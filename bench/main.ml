(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section at the `quick` scale, then runs Bechamel
   micro-benchmarks over the hot paths of the implementation.

   Run with: dune exec bench/main.exe
   Pass --scale standard (or paper) for larger experiment scales,
   --jobs N to fan experiments out over N domains (results are
   bit-identical at any job count), --benchmarks a,b to restrict the
   benchmark set, --fault-spec crash=0.05,timeout=0.02 to inject
   deterministic simulated faults into every learner run,
   --progress for live per-task reporting, --trace FILE
   to record a JSONL span trace (summarize with `altune trace-summary`),
   --events FILE to record the learner decision stream (render with
   `altune report`), --metrics to dump the metrics registry to stderr
   at exit, or a subset
   of section names (table1 table2 fig1 fig2 fig5 fig6 ablation serve
   surrogate micro) to run only those.  The surrogate section (alias
   --surrogate) benchmarks the dynamic-tree hot path — observe
   throughput, incremental vs full-recompute ALC — and writes
   BENCH_surrogate.json for the bench-diff gate.  The serve section
   drives --serve-load N
   (default 200) synthetic tuning sessions with overlapping config
   demand through the in-process tuning server, recording sessions/sec
   and the cross-session memo hit rate.  Per-section wall times are
   appended to
   BENCH_harness.json, stamped with the run manifest (host, cores, git
   rev, ...) so the performance trajectory stays interpretable across
   machines and commits. *)

module Drivers = Altune_experiments.Drivers
module Scale = Altune_experiments.Scale
module Runs = Altune_experiments.Runs
module Pool = Altune_exec.Pool
module Trace = Altune_obs.Trace
module Metrics = Altune_obs.Metrics
module Manifest = Altune_obs.Manifest
module Events = Altune_obs.Events

(* (section id, wall seconds) of every section run, for BENCH_harness.json. *)
let timings : (string * float) list ref = ref []

(* Fully-formed extra records appended by sections that measure more
   than wall time (the serve section's throughput record), in the same
   one-"  {...}"-line format as the timing records. *)
let extra_records : string list ref = ref []

let section id name f =
  Printf.printf "==============================================================\n";
  Printf.printf "%s\n" name;
  Printf.printf "==============================================================\n%!";
  let t0 = Unix.gettimeofday () in
  print_string (Trace.with_span ~name:("bench." ^ id) f);
  let dt = Unix.gettimeofday () -. t0 in
  timings := (id, dt) :: !timings;
  Printf.printf "\n[%s regenerated in %.1fs wall time]\n\n%!" name dt

(* The file is a flat JSON array of {section, scale, jobs, seconds, ...}
   records; successive runs append rather than overwrite, so the
   performance trajectory (across job counts, scales and commits) lives in
   one machine-readable place.  Existing records are recovered line-wise —
   the file is only ever written by this function, one record per line.
   Each new record carries the run manifest (host, cores, git rev, OCaml
   version, seed) so an anomalous timing, like a jobs=4 run that is slower
   than jobs=1, can be traced back to the machine that produced it. *)
let write_harness_json ~path ~scale ~jobs ~(manifest : Manifest.t) =
  let existing =
    if not (Sys.file_exists path) then []
    else begin
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.length line > 3 && String.sub line 0 3 = "  {" then begin
             let line =
               if line.[String.length line - 1] = ',' then
                 String.sub line 0 (String.length line - 1)
               else line
             in
             lines := line :: !lines
           end
         done
       with End_of_file -> ());
      close_in ic;
      List.rev !lines
    end
  in
  let fresh =
    List.rev_map
      (fun (id, dt) ->
        Printf.sprintf
          "  {\"section\": %S, \"scale\": %S, \"jobs\": %d, \"seconds\": \
           %.3f, \"host\": %S, \"cores\": %d, \"git_rev\": %S, \"ocaml\": \
           %S, \"seed\": %d}"
          id scale jobs dt manifest.hostname manifest.cores manifest.git_rev
          manifest.ocaml_version manifest.seed)
      !timings
  in
  let records = existing @ fresh @ List.rev !extra_records in
  let oc = open_out path in
  Printf.fprintf oc "[\n%s\n]\n" (String.concat ",\n" records);
  close_out oc

(* --- Tuning-service load generator --------------------------------- *)

(* Drive [sessions] synthetic tuning sessions through the in-process
   server API: smoke-scale adaptive runs capped at 16 iterations, spread
   over all 11 kernels x a few seeds so many sessions demand the same
   (kernel, config) evaluations — the overlap the shared cross-session
   memo exists to exploit.  All sessions are opened up front (most of
   them queue under admission control), then tick requests step every
   live session in parallel until the whole fleet has completed.  The
   returned summary is deterministic (simulated quantities only); the
   wall-derived sessions/sec rate goes into the harness record. *)
let run_serve_load ~manifest ~scale_label ~jobs ~sessions ?snapshots () =
  let module Server = Altune_serve.Server in
  let module P = Altune_serve.Protocol in
  let benches = Array.of_list Altune_spapt.Kernels.names in
  let seeds = [| 42; 43; 44 |] in
  let n_benches = Array.length benches in
  let n_seeds = Array.length seeds in
  let max_live = 16 in
  let tick_iterations = 6 in
  let n_max = 16 in
  let server =
    Server.create
      {
        Server.jobs;
        max_live;
        max_queue = sessions;
        budget_cap = None;
        checkpoint_dir = None;
        snapshot_path = snapshots;
        snapshot_every = 10.0;
        flight = None;
        ledger_path = None;
      }
  in
  (* Requests go through the line codecs, exactly like a socket client:
     that is the path the wire-latency sketch times. *)
  let request req =
    let reply_line = Server.handle_line server (P.request_to_line req) in
    match P.response_of_line reply_line with
    | Ok { P.r_result = Ok reply; _ } -> reply
    | Ok { P.r_result = Error e; _ } -> failwith ("serve load: " ^ e)
    | Error e -> failwith ("serve load: bad response line: " ^ e)
  in
  (* With --snapshots, snapshot on a tick counter (not wall time) so the
     record count is load-determined, and scrape the live-introspection
     verbs once mid-load, the way an external monitor would. *)
  let snapshot_every_ticks = 8 in
  let scrape_at_tick = snapshot_every_ticks in
  let scrape_base =
    Option.map (fun p -> Filename.remove_extension p) snapshots
  in
  let write_file path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  let on_tick ticks =
    if snapshots <> None && ticks mod snapshot_every_ticks = 0 then
      ignore (Server.snapshot server);
    match scrape_base with
    | Some base when ticks = scrape_at_tick ->
        (match request P.Stats_full with
        | P.R_stats_full data ->
            write_file (base ^ "-statsfull.json")
              (Altune_obs.Json.to_string data ^ "\n")
        | _ -> failwith "serve load: unexpected stats_full reply");
        (match request P.Prom with
        | P.R_prom text -> write_file (base ^ "-prom.txt") text
        | _ -> failwith "serve load: unexpected prom reply")
    | _ -> ()
  in
  let t0 = Unix.gettimeofday () in
  for i = 0 to sessions - 1 do
    ignore
      (request
         (P.Open
            {
              P.o_session = Printf.sprintf "s%04d" i;
              o_bench = benches.(i mod n_benches);
              o_scale = "smoke";
              o_seed = seeds.(i / n_benches mod n_seeds);
              o_fault = None;
              o_budget = None;
              o_n_max = Some n_max;
              o_checkpoint = None;
            }))
  done;
  let ticks = ref 0 in
  let rec drive () =
    let stats =
      match request P.Stats with
      | P.R_stats s -> s
      | _ -> failwith "serve load: unexpected stats reply"
    in
    if stats.P.s_done >= sessions then stats
    else if !ticks > (4 * sessions) + 16 then
      failwith "serve load: fleet did not converge"
    else begin
      incr ticks;
      ignore (request (P.Tick { iterations = tick_iterations }));
      on_tick !ticks;
      drive ()
    end
  in
  let stats = drive () in
  let seconds = Unix.gettimeofday () -. t0 in
  ignore (request P.Shutdown);
  let memo = stats.P.s_memo in
  (* The whole point of multi-tenancy is shared evaluations: a load with
     overlapping workloads but zero cross-session hits means the shared
     memo is broken, so fail loudly rather than record it. *)
  if memo.P.m_cross_hits = 0 then
    failwith "serve load: no cross-session memo sharing observed";
  let pct part whole =
    if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole
  in
  let rate =
    if seconds > 0.0 then float_of_int sessions /. seconds else 0.0
  in
  let m : Manifest.t = manifest in
  extra_records :=
    Printf.sprintf
      "  {\"section\": \"serve\", \"scale\": %S, \"jobs\": %d, \"seconds\": \
       %.3f, \"host\": %S, \"cores\": %d, \"git_rev\": %S, \"ocaml\": %S, \
       \"seed\": %d, \"sessions\": %d, \"sessions_per_sec\": %.2f, \
       \"memo_lookups\": %d, \"memo_entries\": %d, \"memo_hits\": %d, \
       \"memo_shared_keys\": %d, \"memo_cross_hits\": %d, \
       \"memo_cross_hit_rate\": %.4f}"
      scale_label jobs seconds m.hostname m.cores m.git_rev m.ocaml_version
      m.seed sessions rate memo.P.m_lookups memo.P.m_entries memo.P.m_hits
      memo.P.m_shared_keys memo.P.m_cross_hits
      (if memo.P.m_lookups = 0 then 0.0
       else float_of_int memo.P.m_cross_hits /. float_of_int memo.P.m_lookups)
    :: !extra_records;
  Printf.sprintf
    "serve load: %d sessions over %d kernels x %d seeds (%d distinct \
     workloads)\n\
     admission : %d live slots, FIFO queue, %d ticks of %d iterations\n\
     completed : %d done, %d live, %d queued (all sessions ran to their \
     %d-iteration cap)\n\
     memo      : %d evaluation lookups, %d distinct configs computed, %d \
     hits (%.1f%%)\n\
     sharing   : %d keys touched by 2+ sessions; %d cross-session hits \
     (%.1f%% of lookups)\n"
    sessions n_benches n_seeds
    (min sessions (n_benches * n_seeds))
    max_live !ticks tick_iterations stats.P.s_done stats.P.s_live
    stats.P.s_queued n_max memo.P.m_lookups memo.P.m_entries memo.P.m_hits
    (pct memo.P.m_hits memo.P.m_lookups)
    memo.P.m_shared_keys memo.P.m_cross_hits
    (pct memo.P.m_cross_hits memo.P.m_lookups)

(* --- Surrogate hot-path microbenchmark ------------------------------ *)

(* Measure the dynamic-tree inner loop at a learner-shaped workload
   (ensemble observe throughput, fast incremental ALC, and the pre-PR
   full-recompute ALC kept behind [Dynatree.force_full_alc]) and write
   the records to BENCH_surrogate.json in the Bench_diff format, so CI
   can gate them against the committed bench/surrogate_baseline.json.
   Rates use a generic "rate"/"rate_unit" pair; allocations are reported
   as minor words per operation (Gc.minor_words delta), which is exact
   and deterministic, unlike the wall-clock rates. *)
let surrogate_json_path = "BENCH_surrogate.json"

let append_surrogate_records ~path records =
  let existing =
    if not (Sys.file_exists path) then []
    else begin
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.length line > 3 && String.sub line 0 3 = "  {" then begin
             let line =
               if line.[String.length line - 1] = ',' then
                 String.sub line 0 (String.length line - 1)
               else line
             in
             lines := line :: !lines
           end
         done
       with End_of_file -> ());
      close_in ic;
      List.rev !lines
    end
  in
  let oc = open_out path in
  Printf.fprintf oc "[\n%s\n]\n" (String.concat ",\n" (existing @ records));
  close_out oc

let run_surrogate ~(manifest : Manifest.t) ~scale_label ~jobs =
  let module Rng = Altune_prng.Rng in
  let module Dt = Altune_dynatree.Dynatree in
  let dim = 8 and n_particles = 300 in
  let n_train = 120 and n_timed_obs = 120 in
  let n_refs = 256 and n_cands = 128 in
  let alc_fast_iters = 30 and alc_slow_iters = 6 in
  let params = { Dt.default_params with n_particles } in
  let model = Dt.create ~params ~rng:(Rng.create ~seed:11) dim in
  Dt.set_pool model (Some (Runs.pool ()));
  let data_rng = Rng.create ~seed:13 in
  let point () = Array.init dim (fun _ -> Rng.uniform data_rng) in
  let response x =
    (10.0 *. x.(0)) +. (5.0 *. x.(1) *. x.(1)) +. Rng.normal data_rng
  in
  for _ = 1 to n_train do
    let x = point () in
    Dt.observe model x (response x)
  done;
  let refs = Array.init n_refs (fun _ -> point ()) in
  let cands = Array.init n_cands (fun _ -> point ()) in
  (* Register the reference set (fills the per-leaf member caches) before
     timing, as a learner run would on its first scoring pass. *)
  ignore (Dt.alc_scores model ~candidates:cands ~refs);
  let timed f =
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0, Gc.minor_words () -. w0)
  in
  (* Observe throughput: particle updates per second, with the incremental
     ALC cache maintenance active (refs are registered). *)
  let obs_s, obs_words =
    timed (fun () ->
        for _ = 1 to n_timed_obs do
          let x = point () in
          Dt.observe model x (response x)
        done)
  in
  let obs_rate = float_of_int (n_particles * n_timed_obs) /. obs_s in
  (* ALC scoring throughput, fast (incremental caches) and slow (the
     pre-PR full recompute) paths over the identical model state. *)
  let alc_work iters = float_of_int (iters * n_cands * n_particles) in
  let fast_s, fast_words =
    timed (fun () ->
        for _ = 1 to alc_fast_iters do
          ignore (Dt.alc_scores model ~candidates:cands ~refs)
        done)
  in
  let fast_rate = alc_work alc_fast_iters /. fast_s in
  Dt.force_full_alc := true;
  let slow_s, slow_words =
    timed (fun () ->
        for _ = 1 to alc_slow_iters do
          ignore (Dt.alc_scores model ~candidates:cands ~refs)
        done)
  in
  Dt.force_full_alc := false;
  let slow_rate = alc_work alc_slow_iters /. slow_s in
  (* Full learner iteration: ingest one observation, then score the whole
     candidate pool — the unit of work an active-learning tuning step
     performs (observe the new measurement, pick the next configuration
     by ALC).  This is the end-to-end rate a tuning session feels, and
     the headline number for the flat-array + incremental-ALC rework. *)
  let iter_n = 40 in
  let iter_s, iter_words =
    timed (fun () ->
        for _ = 1 to iter_n do
          let x = point () in
          Dt.observe model x (response x);
          ignore (Dt.alc_scores model ~candidates:cands ~refs)
        done)
  in
  let iter_rate = float_of_int iter_n /. iter_s in
  let per op_words ops = op_words /. float_of_int ops in
  let m = manifest in
  let record ~section ~seconds ~rate ~rate_unit ~words_per_op =
    Printf.sprintf
      "  {\"section\": %S, \"scale\": %S, \"jobs\": %d, \"seconds\": %.3f, \
       \"host\": %S, \"cores\": %d, \"git_rev\": %S, \"ocaml\": %S, \
       \"seed\": %d, \"rate\": %.1f, \"rate_unit\": %S, \
       \"minor_words_per_op\": %.1f}"
      section scale_label jobs seconds m.hostname m.cores m.git_rev
      m.ocaml_version m.seed rate rate_unit words_per_op
  in
  append_surrogate_records ~path:surrogate_json_path
    [
      record ~section:"surrogate-observe" ~seconds:obs_s ~rate:obs_rate
        ~rate_unit:"particles/s"
        ~words_per_op:(per obs_words n_timed_obs);
      record ~section:"surrogate-alc" ~seconds:fast_s ~rate:fast_rate
        ~rate_unit:"scores/s"
        ~words_per_op:(per fast_words alc_fast_iters);
      record ~section:"surrogate-alc-full" ~seconds:slow_s ~rate:slow_rate
        ~rate_unit:"scores/s"
        ~words_per_op:(per slow_words alc_slow_iters);
      record ~section:"surrogate-iteration" ~seconds:iter_s ~rate:iter_rate
        ~rate_unit:"iterations/s"
        ~words_per_op:(per iter_words iter_n);
    ];
  Printf.sprintf
    "surrogate hot path: %d particles, dim %d, %d refs, %d candidates\n\
     observe   : %d ensemble updates in %.3fs — %.0f particles/s (%.0f \
     minor words/observe)\n\
     alc fast  : %d calls in %.3fs — %.3e scores/s (%.0f minor words/call)\n\
     alc full  : %d calls in %.3fs — %.3e scores/s (%.0f minor words/call)\n\
     fast/full : %.1fx on identical model state\n\
     iteration : %d observe+score steps in %.3fs — %.1f iterations/s \
     (%.0f minor words/iter)\n\
     [surrogate records appended to %s]\n"
    n_particles dim n_refs n_cands n_timed_obs obs_s obs_rate
    (per obs_words n_timed_obs)
    alc_fast_iters fast_s fast_rate
    (per fast_words alc_fast_iters)
    alc_slow_iters slow_s slow_rate
    (per slow_words alc_slow_iters)
    (fast_rate /. slow_rate)
    iter_n iter_s iter_rate (per iter_words iter_n)
    surrogate_json_path

(* --- Transformation-prefix forking benchmark ------------------------ *)

(* Sibling-heavy candidate batches — one random base configuration per
   batch with its last knob swept over every value, the shape a
   batched learner iteration produces — evaluated twice from cold
   caches: from scratch with forking disabled (sequential, the pre-PR
   path), then through the transformation-prefix trie with each batch
   fanned out on the pool.  The two instances must agree
   float-for-float (forking is designed to be byte-inert), so the
   section doubles as a differential audit; the record carries the
   measured prefix-reuse rate and the from-scratch/forked speedup.
   Records land in BENCH_fork.json for the bench-diff gate against
   bench/fork_baseline.json and in BENCH_harness.json alongside the
   section wall times. *)
let fork_json_path = "BENCH_fork.json"

let run_fork ~(manifest : Manifest.t) ~scale_label ~jobs =
  let module Rng = Altune_prng.Rng in
  let module Spapt = Altune_spapt.Spapt in
  let module Fork = Altune_spapt.Fork in
  let benches = [ "mm"; "mvt"; "hessian"; "lu" ] in
  let n_bases = 24 in
  let batches_of name =
    let b = Spapt.create name in
    let rng =
      Rng.create ~seed:(Rng.derive ~seed:42 [ Rng.S "bench.fork"; Rng.S name ])
    in
    let knobs = Array.of_list (Spapt.knobs b) in
    let last = Array.length knobs - 1 in
    let card = Spapt.knob_cardinality knobs.(last) in
    List.init n_bases (fun _ ->
        let base = Spapt.random_config b rng in
        List.init card (fun v ->
            let c = Array.copy base in
            c.(last) <- v;
            c))
  in
  let plans = List.map (fun name -> (name, batches_of name)) benches in
  let n_configs =
    List.fold_left
      (fun acc (_, bs) -> acc + List.fold_left (fun a b -> a + List.length b) 0 bs)
      0 plans
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* From-scratch baseline: forking off, every config transformed and
     priced independently, in sequence. *)
  let flat_values, flat_s =
    timed (fun () ->
        List.map
          (fun (name, batches) ->
            let b = Spapt.create name in
            Spapt.set_fork b false;
            List.concat_map
              (List.map (fun c -> Spapt.true_runtime b c))
              batches)
          plans)
  in
  (* Forked: same batches resolved through the prefix trie, each batch
     prepared (evaluated) as one pool fan-out before being read back. *)
  let (fork_values, stats), fork_s =
    timed (fun () ->
        let stats = ref [] in
        let values =
          List.map
            (fun (name, batches) ->
              let b = Spapt.create name in
              Spapt.set_pool b (Some (Runs.pool ()));
              let vs =
                List.concat_map
                  (fun batch ->
                    Spapt.prepare b batch;
                    List.map (fun c -> Spapt.true_runtime b c) batch)
                  batches
              in
              stats := Spapt.fork_stats b :: !stats;
              vs)
            plans
        in
        (values, !stats))
  in
  if flat_values <> fork_values then
    failwith
      "fork bench: forked evaluations diverged from from-scratch baseline";
  let sum f = List.fold_left (fun a s -> a + f s) 0 stats in
  let reused = sum (fun (s : Fork.stats) -> s.steps_reused) in
  let applied = sum (fun (s : Fork.stats) -> s.steps_applied) in
  let nodes = sum (fun (s : Fork.stats) -> s.nodes) in
  let reuse =
    if reused + applied = 0 then 0.0
    else float_of_int reused /. float_of_int (reused + applied)
  in
  let speedup = if fork_s > 0.0 then flat_s /. fork_s else 0.0 in
  let m = manifest in
  let record =
    Printf.sprintf
      "  {\"section\": \"fork\", \"scale\": %S, \"jobs\": %d, \"seconds\": \
       %.3f, \"host\": %S, \"cores\": %d, \"git_rev\": %S, \"ocaml\": %S, \
       \"seed\": %d, \"rate\": %.2f, \"rate_unit\": \"x-from-scratch\", \
       \"reuse_rate\": %.4f, \"configs\": %d, \"trie_nodes\": %d, \
       \"flat_seconds\": %.3f}"
      scale_label jobs fork_s m.hostname m.cores m.git_rev m.ocaml_version
      m.seed speedup reuse n_configs nodes flat_s
  in
  append_surrogate_records ~path:fork_json_path [ record ];
  extra_records := record :: !extra_records;
  Printf.sprintf
    "prefix forking: %d benchmarks, %d sibling-heavy batches, %d configs\n\
     from-scratch : %.3fs (forking off, sequential)\n\
     forked       : %.3fs (prefix trie + pool fan-out, jobs=%d)\n\
     speedup      : %.2fx; identical evaluations float-for-float\n\
     trie         : %d nodes; %d/%d steps served from a cached prefix \
     (%.0f%% reuse)\n\
     [fork record appended to %s]\n"
    (List.length benches)
    (List.length benches * n_bases)
    n_configs flat_s fork_s jobs speedup nodes reused (reused + applied)
    (100.0 *. reuse) fork_json_path

(* --- Bechamel micro-benchmarks of the implementation's hot paths --- *)

let micro_tests () =
  let open Bechamel in
  let module Rng = Altune_prng.Rng in
  let module Dt = Altune_dynatree.Dynatree in
  let module Spapt = Altune_spapt.Spapt in
  let module Parser = Altune_kernellang.Parser in
  let module Analysis = Altune_kernellang.Analysis in
  let module Machine = Altune_machine.Machine in
  let module Transform = Altune_kernellang.Transform in
  let rng = Rng.create ~seed:1 in
  let rng_test =
    Test.make ~name:"rng.normal" (Staged.stage (fun () -> Rng.normal rng))
  in
  let mm_src = Altune_spapt.Kernels.source "mm" in
  let parse_test =
    Test.make ~name:"parser.mm"
      (Staged.stage (fun () -> ignore (Parser.parse_kernel mm_src)))
  in
  let mm_kernel = Parser.parse_kernel mm_src in
  let transform_test =
    Test.make ~name:"transform.tile+unroll"
      (Staged.stage (fun () ->
           ignore
             (Result.bind
                (Transform.tile_nest [ ("i", 16); ("j", 16); ("k", 16) ]
                   mm_kernel)
                (Transform.unroll ~index:"k" ~factor:4))))
  in
  let analyzed = Analysis.analyze mm_kernel in
  let machine_test =
    Test.make ~name:"machine.estimate"
      (Staged.stage (fun () ->
           ignore (Machine.estimate Machine.default analyzed)))
  in
  let bench = Spapt.create "mvt" in
  let eval_rng = Rng.create ~seed:3 in
  let spapt_test =
    Test.make ~name:"spapt.measure(memoized)"
      (Staged.stage (fun () ->
           let c = Spapt.random_config bench eval_rng in
           ignore (Spapt.measure bench ~rng:eval_rng ~run_index:1 c)))
  in
  (* Dynamic tree: trained once, then benchmark observe / predict / alc. *)
  let params = { Dt.default_params with n_particles = 60 } in
  let model = Dt.create ~params ~rng:(Rng.create ~seed:5) 5 in
  let obs_rng = Rng.create ~seed:7 in
  for _ = 1 to 200 do
    let x = Array.init 5 (fun _ -> Rng.uniform obs_rng) in
    Dt.observe model x (Rng.normal obs_rng)
  done;
  let observe_test =
    Test.make ~name:"dynatree.observe"
      (Staged.stage (fun () ->
           let x = Array.init 5 (fun _ -> Rng.uniform obs_rng) in
           Dt.observe model x (Rng.normal obs_rng)))
  in
  let q = Array.init 5 (fun _ -> 0.5) in
  let predict_test =
    Test.make ~name:"dynatree.predict"
      (Staged.stage (fun () -> ignore (Dt.predict model q)))
  in
  let refs =
    Array.init 100 (fun _ -> Array.init 5 (fun _ -> Rng.uniform obs_rng))
  in
  let cands =
    Array.init 50 (fun _ -> Array.init 5 (fun _ -> Rng.uniform obs_rng))
  in
  let alc_test =
    Test.make ~name:"dynatree.alc(50 cands,100 refs)"
      (Staged.stage (fun () ->
           ignore (Dt.alc_scores model ~candidates:cands ~refs)))
  in
  (* The paper's Section 3.2 argument made measurable: a dynamic-tree
     update is incremental while a GP update refactorizes the kernel
     matrix (O(n^3)); compare both at 200 accumulated observations. *)
  let module Gp = Altune_gp.Gp in
  let gp = Gp.create ~dim:5 () in
  let gp_rng = Rng.create ~seed:9 in
  for _ = 1 to 200 do
    let x = Array.init 5 (fun _ -> Rng.uniform gp_rng) in
    Gp.observe gp x (Rng.normal gp_rng)
  done;
  ignore (Gp.predict gp (Array.make 5 0.5));
  let gp_update_test =
    Test.make ~name:"gp.observe+refit(n=200)"
      (Staged.stage (fun () ->
           let x = Array.init 5 (fun _ -> Rng.uniform gp_rng) in
           Gp.observe gp x (Rng.normal gp_rng);
           ignore (Gp.predict gp x)))
  in
  let gp_predict_test =
    Test.make ~name:"gp.predict(n=200)"
      (Staged.stage (fun () -> ignore (Gp.predict gp (Array.make 5 0.3))))
  in
  [
    rng_test;
    parse_test;
    transform_test;
    machine_test;
    spapt_test;
    observe_test;
    predict_test;
    alc_test;
    gp_update_test;
    gp_predict_test;
  ]

let run_micro () =
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 500) ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let tests = micro_tests () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-34s %16s\n%s\n" "micro-benchmark" "ns/run"
       (String.make 52 '-'));
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false
          ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Buffer.add_string buf (Printf.sprintf "%-34s %16.1f\n" name est)
          | Some _ | None ->
              Buffer.add_string buf (Printf.sprintf "%-34s %16s\n" name "?"))
        results)
    tests;
  Buffer.contents buf

let () =
  let args = Array.to_list Sys.argv in
  let scale =
    let rec find = function
      | "--scale" :: label :: _ -> (
          match Scale.of_label label with
          | Some s -> s
          | None ->
              Printf.eprintf "unknown scale %s\n" label;
              exit 2)
      | _ :: rest -> find rest
      | [] -> Scale.quick
    in
    find args
  in
  let jobs =
    let rec find = function
      | ("--jobs" | "-j") :: n :: _ -> (
          match int_of_string_opt n with
          | Some j when j >= 1 -> j
          | Some _ | None ->
              Printf.eprintf "--jobs needs a positive integer, got %s\n" n;
              exit 2)
      | _ :: rest -> find rest
      | [] -> Pool.default_jobs ()
    in
    find args
  in
  let benchmarks =
    let rec find = function
      | "--benchmarks" :: names :: _ ->
          Some (String.split_on_char ',' names)
      | _ :: rest -> find rest
      | [] -> None
    in
    let known = Altune_spapt.Kernels.names in
    Option.iter
      (List.iter (fun n ->
           if not (List.mem n known) then begin
             Printf.eprintf "unknown benchmark %S; known: %s\n" n
               (String.concat ", " known);
             exit 2
           end))
      (find args);
    find args
  in
  let trace =
    let rec find = function
      | "--trace" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let events =
    let rec find = function
      | "--events" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let fault =
    let rec find = function
      | "--fault-spec" :: spec :: _ -> (
          match Altune_exec.Fault.of_string spec with
          | Ok sp -> Some sp
          | Error e ->
              Printf.eprintf "--fault-spec: %s\n" e;
              exit 2)
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let serve_load =
    let rec find = function
      | "--serve-load" :: n :: _ -> (
          match int_of_string_opt n with
          | Some s when s >= 1 -> s
          | Some _ | None ->
              Printf.eprintf "--serve-load needs a positive integer, got %s\n"
                n;
              exit 2)
      | _ :: rest -> find rest
      | [] -> 200
    in
    find args
  in
  let snapshots =
    let rec find = function
      | "--snapshots" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let metrics = List.mem "--metrics" args in
  let progress = List.mem "--progress" args in
  let on_event =
    if not progress then None
    else
      Some
        (function
        | Pool.Task_started { label; _ } ->
            Printf.eprintf "[pool] start  %s\n%!" label
        | Pool.Task_finished { label; wall_seconds; _ } ->
            Printf.eprintf "[pool] done   %s (%.1fs)\n%!" label wall_seconds)
  in
  Runs.set_jobs ?on_event jobs;
  Runs.set_fault fault;
  let wanted name =
    let named =
      List.filter_map
        (fun a ->
          (* `--surrogate`/`--fork` are accepted as aliases for the
             section names, matching the CI invocations. *)
          let a = if a = "--surrogate" then "surrogate" else a in
          let a = if a = "--fork" then "fork" else a in
          if
            List.mem a
              [ "table1"; "table2"; "fig1"; "fig2"; "fig5"; "fig6";
                "ablation"; "serve"; "micro"; "surrogate"; "fork" ]
          then Some a
          else None)
        (List.tl args)
    in
    named = [] || List.mem name named
  in
  let seed = 42 in
  let manifest = Manifest.capture ~scale:scale.Scale.label ~jobs ~seed () in
  Printf.printf
    "altune benchmark harness — reproducing every table and figure of\n\
     'Minimizing the Cost of Iterative Compilation with Active Learning'\n\
     (CGO 2017) at scale=%s, seed=%d, jobs=%d.  Costs are simulated\n\
     seconds; the shapes, not the absolute numbers, are the reproduction\n\
     target.\n\n%!"
    scale.Scale.label seed jobs;
  let run_all () =
    if wanted "fig1" then
      section "fig1" "Figure 1 (mm unroll plane: MAE and optimal samples)"
        (fun () -> Drivers.fig1 ~scale ~seed ());
    if wanted "fig2" then
      section "fig2" "Figure 2 (adi runtime vs unroll factor)" (fun () ->
          Drivers.fig2 ~scale ~seed ());
    if wanted "table2" then
      section "table2" "Table 2 (noise spread across each space)" (fun () ->
          Drivers.table2 ?benchmarks ~scale ~seed ());
    if wanted "table1" then
      section "table1" "Table 1 (lowest common error, cost, speed-up)"
        (fun () -> Drivers.table1 ?benchmarks ~scale ~seed ());
    if wanted "fig5" then
      section "fig5" "Figure 5 (profiling-cost reduction)" (fun () ->
          Drivers.fig5 ?benchmarks ~scale ~seed ());
    if wanted "fig6" then
      section "fig6" "Figure 6 (error vs cost for three sampling plans)"
        (fun () -> Drivers.fig6 ?benchmarks ~scale ~seed ());
    if wanted "ablation" then
      section "ablation" "Ablation (design choices of the adaptive learner)"
        (fun () -> Drivers.ablation ~scale ~seed ());
    if wanted "serve" then
      section "serve"
        (Printf.sprintf
           "Serve (tuning-as-a-service load: %d multi-tenant sessions)"
           serve_load) (fun () ->
          run_serve_load ~manifest ~scale_label:scale.Scale.label ~jobs
            ~sessions:serve_load ?snapshots ());
    if wanted "surrogate" then
      section "surrogate"
        "Surrogate hot path (observe + incremental vs full ALC)" (fun () ->
          run_surrogate ~manifest ~scale_label:scale.Scale.label ~jobs);
    if wanted "fork" then
      section "fork"
        "Prefix forking (trie-resolved candidate batches vs from scratch)"
        (fun () -> run_fork ~manifest ~scale_label:scale.Scale.label ~jobs);
    if wanted "micro" then
      section "micro" "Micro-benchmarks (Bechamel)" (fun () -> run_micro ())
  in
  let run_all () =
    match events with
    | None -> run_all ()
    | Some path ->
        Events.with_file path ~manifest:(Manifest.to_json manifest) run_all
  in
  (match trace with
  | None -> run_all ()
  | Some path ->
      Trace.with_file path ~manifest:(Manifest.to_json manifest) run_all);
  write_harness_json ~path:"BENCH_harness.json" ~scale:scale.Scale.label
    ~jobs ~manifest;
  Printf.printf "[per-section wall times written to BENCH_harness.json]\n%!";
  if metrics then prerr_string (Metrics.render ())
