(* Learner-event telemetry: JSON round-trips, sink ordering guarantees,
   byte-identical streams at any job count, telemetry-off neutrality,
   revisit-flag consistency with the adaptive plan, eval events agreeing
   with the learner's own curve, and the CSV/HTML report paths. *)

module Json = Altune_obs.Json
module Events = Altune_obs.Events
module Learner = Altune_core.Learner
module Dataset = Altune_core.Dataset
module Problem = Altune_core.Problem
module Rng = Altune_prng.Rng
module Runs = Altune_experiments.Runs
module Scale = Altune_experiments.Scale
module Drivers = Altune_experiments.Drivers
module Spapt = Altune_spapt.Spapt
module Web_report = Altune_report.Web_report

let ev_line ev = Json.to_string (Events.to_json ev)

let parse_event line =
  match Json.of_string line with
  | Error e -> Alcotest.failf "bad event line %S: %s" line e
  | Ok j -> (
      match Events.of_json j with
      | Ok ev -> ev
      | Error e -> Alcotest.failf "bad event %S: %s" line e)

(* --- JSON round-trip ---------------------------------------------------- *)

let sample_events =
  [
    {
      Events.run = "mm/smoke/adaptive/0";
      seq = 0;
      kind =
        Events.Start
          {
            plan = "adaptive:35";
            strategy = "alc";
            model = "dynatree";
            dim = 4;
            pool = 187;
            n_max = 50;
          };
    };
    {
      Events.run = "mm/smoke/adaptive/0";
      seq = 1;
      kind =
        Events.Select
          {
            iteration = 5;
            config = "5,1,4,20";
            score = 0.03125;
            revisit = true;
            config_obs = 3;
            examples = 5;
            observations = 41;
            cost_s = 947.25;
          };
    };
    {
      Events.run = "mm/smoke/adaptive/0";
      seq = 2;
      kind =
        Events.Eval
          {
            iteration = 10;
            examples = 10;
            observations = 46;
            cost_s = 982.5;
            rmse = 13.84;
            ref_variance = 0.8125;
            tree =
              Some
                {
                  mean_leaves = 1.25;
                  max_depth = 2;
                  depth_histogram = [| 20; 4; 1 |];
                  split_frequencies = [| 0.5; 0.25; 0.25; 0.0 |];
                };
          };
    };
    {
      Events.run = "gp-run";
      seq = 3;
      kind =
        Events.Eval
          {
            iteration = 10;
            examples = 10;
            observations = 46;
            cost_s = 982.5;
            rmse = 13.84;
            ref_variance = 0.8125;
            tree = None;
          };
    };
    {
      Events.run = "mm/smoke/adaptive/0";
      seq = 4;
      kind =
        Events.Finish
          {
            iterations = 50;
            examples = 50;
            observations = 86;
            cost_s = 1426.5;
            rmse = 10.02;
          };
    };
  ]

let test_json_roundtrip () =
  List.iter
    (fun ev ->
      let line = ev_line ev in
      let ev' = parse_event line in
      Alcotest.(check string) "round-trip" line (ev_line ev'))
    sample_events

let test_of_lines_mixed () =
  let manifest =
    Altune_obs.Manifest.to_json
      (Altune_obs.Manifest.capture ~scale:"smoke" ~jobs:2 ~seed:1 ())
  in
  let lines =
    [
      Json.to_string manifest;
      "";
      ev_line (List.hd sample_events);
      (* A span line from a concatenated trace: not ours, skipped. *)
      {|{"ev":"span","name":"x","t0":0.0,"t1":1.0}|};
      ev_line (List.nth sample_events 1);
    ]
  in
  match Events.of_lines lines with
  | Error e -> Alcotest.failf "of_lines: %s" e
  | Ok f ->
      Alcotest.(check int) "two learner events" 2 (List.length f.events);
      Alcotest.(check bool) "manifest captured" true (Option.is_some f.manifest);
      (match Events.of_lines [ {|{"no":"tag"}|} ] with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "line without ev tag accepted");
      (match Events.of_lines [ "garbage" ] with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "malformed line accepted");
      (match Events.of_lines [ {|{"ev":"learner","kind":"nope"}|} ] with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unknown learner kind accepted")

(* --- Sink ordering ------------------------------------------------------ *)

let test_sink_sorts_by_run_and_seq () =
  let dummy i =
    Events.Finish
      { iterations = i; examples = 0; observations = 0; cost_s = 0.0;
        rmse = 0.0 }
  in
  let (), lines =
    Events.with_memory (fun () ->
        (* Emitted out of run order: the sink must order by key. *)
        Events.with_run "zeta" (fun () ->
            Events.emit (dummy 0);
            Events.emit (dummy 1));
        Events.with_run "alpha" (fun () -> Events.emit (dummy 2)))
  in
  let keys =
    List.map
      (fun l ->
        let ev = parse_event l in
        (ev.Events.run, ev.Events.seq))
      lines
  in
  Alcotest.(check (list (pair string int)))
    "sorted by (run, seq)"
    [ ("alpha", 0); ("zeta", 0); ("zeta", 1) ]
    keys

(* --- Full-pipeline properties ------------------------------------------- *)

(* One captured smoke-scale event stream, shared across the checks below
   (capturing it costs a full three-plan experiment). *)
let captured =
  lazy
    (let run jobs =
       Runs.set_jobs jobs;
       Runs.clear_cache ();
       let curves, lines =
         Events.with_memory (fun () ->
             Runs.curves_for (Spapt.create "lu") Scale.smoke ~seed:3)
       in
       Runs.clear_cache ();
       Runs.set_jobs 1;
       (curves, lines)
     in
     let seq_curves, seq_lines = run 1 in
     let _, par_lines = run 4 in
     (seq_curves, seq_lines, par_lines))

let test_stream_identical_across_jobs () =
  let _, seq_lines, par_lines = Lazy.force captured in
  Alcotest.(check bool) "stream non-empty" true (seq_lines <> []);
  Alcotest.(check (list string)) "jobs=1 = jobs=4" seq_lines par_lines

let test_output_identical_with_events () =
  let run () =
    Runs.clear_cache ();
    Drivers.table1 ~benchmarks:[ "hessian" ] ~scale:Scale.smoke ~seed:1 ()
  in
  let plain = run () in
  let with_ev, lines = Events.with_memory run in
  Runs.clear_cache ();
  Alcotest.(check string) "byte-identical table" plain with_ev;
  Alcotest.(check bool) "events recorded" true (lines <> [])

let test_revisit_flags_consistent () =
  let _, lines, _ = Lazy.force captured in
  let events = List.map parse_event lines in
  let max_obs =
    match Scale.smoke.adaptive.plan with
    | Learner.Adaptive { max_obs } -> max_obs
    | Learner.Fixed _ -> Alcotest.fail "smoke adaptive plan is Fixed"
  in
  let selects = Hashtbl.create 16 in
  List.iter
    (fun (ev : Events.t) ->
      match ev.kind with
      | Events.Select s ->
          Hashtbl.replace selects ev.run
            (s :: Option.value ~default:[] (Hashtbl.find_opt selects ev.run))
      | _ -> ())
    events;
  Alcotest.(check bool) "has select events" true (Hashtbl.length selects > 0);
  Hashtbl.iter
    (fun run sels ->
      let adaptive =
        List.exists
          (fun part -> part = "adaptive")
          (String.split_on_char '/' run)
      in
      List.iter
        (fun (s : Events.select) ->
          if s.revisit then begin
            Alcotest.(check bool)
              "revisits only under the adaptive plan" true adaptive;
            Alcotest.(check bool)
              "revisited config had prior observations" true (s.config_obs >= 1);
            Alcotest.(check bool)
              "revisited config below max_obs" true (s.config_obs < max_obs)
          end
          else
            Alcotest.(check int) "fresh config starts at zero" 0 s.config_obs)
        sels)
    selects

let test_eval_events_match_curve () =
  (* Against a cheap synthetic problem: the eval events must be the
     learner's own curve, point for point. *)
  let problem =
    {
      Problem.name = "synthetic";
      dim = 2;
      space_size = 400.0;
      random_config = (fun rng -> [| Rng.int rng 20; Rng.int rng 20 |]);
      features =
        (fun c -> Array.map (fun v -> (float_of_int v -. 9.5) /. 5.766) c);
      measure =
        (fun ~rng ~run_index c ->
          ignore run_index;
          let x = float_of_int c.(0) and y = float_of_int c.(1) in
          let truth =
            1.0
            +. (0.01 *. ((x -. 12.0) ** 2.0))
            +. (0.02 *. ((y -. 5.0) ** 2.0))
          in
          Float.max 1e-6 (truth *. (1.0 +. Rng.normal ~sigma:0.05 rng)));
      compile_seconds = (fun _ -> 0.05);
      prepare = ignore;
    }
  in
  let dataset =
    Dataset.generate problem ~rng:(Rng.create ~seed:3) ~n_configs:300
      ~test_fraction:0.25 ~n_obs:10
  in
  let settings =
    {
      Learner.scaled_settings with
      n_init = 4;
      n_obs_init = 10;
      n_candidates = 20;
      n_max = 40;
      eval_every = 5;
      ref_size = 50;
      model = Altune_core.Surrogate.dynatree ~particles:40 ();
    }
  in
  let outcome, lines =
    Events.with_memory (fun () ->
        Events.with_run "syn/t/adaptive/0" (fun () ->
            Learner.run problem dataset settings ~rng:(Rng.create ~seed:5)))
  in
  let evals =
    List.filter_map
      (fun l ->
        match (parse_event l).kind with Events.Eval e -> Some e | _ -> None)
      lines
  in
  Alcotest.(check int)
    "one eval event per curve point"
    (List.length outcome.curve) (List.length evals);
  List.iter2
    (fun (p : Learner.eval_point) (e : Events.eval) ->
      Alcotest.(check int) "iteration" p.iteration e.iteration;
      Alcotest.(check int) "examples" p.examples e.examples;
      Alcotest.(check int) "observations" p.observations e.observations;
      Alcotest.(check (float 0.0)) "cost" p.cost_seconds e.cost_s;
      Alcotest.(check (float 0.0)) "rmse" p.rmse e.rmse;
      Alcotest.(check bool)
        "ref variance finite and non-negative" true
        (Float.is_finite e.ref_variance && e.ref_variance >= 0.0);
      match e.tree with
      | None -> Alcotest.fail "dynatree surrogate must report tree stats"
      | Some t ->
          Alcotest.(check bool) "leaves >= 1" true (t.mean_leaves >= 1.0);
          Alcotest.(check bool)
            "depth histogram sums to particles" true
            (Array.fold_left ( + ) 0 t.depth_histogram = 40))
    outcome.curve evals

(* --- Report paths ------------------------------------------------------- *)

let test_csv_export () =
  let csv = Web_report.events_csv sample_events in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one row per event"
    (1 + List.length sample_events)
    (List.length lines);
  Alcotest.(check bool) "header names the revisit column" true
    (String.length (List.hd lines) > 0
    && String.split_on_char ',' (List.hd lines) |> List.mem "revisit")

let test_html_report_matches_curves () =
  let curves, lines, _ = Lazy.force captured in
  let path = Filename.temp_file "events" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      match Web_report.load [ path ] with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok inputs ->
          let html = Web_report.render inputs in
          let html2 = Web_report.render inputs in
          Alcotest.(check string) "render is deterministic" html html2;
          let contains needle =
            let n = String.length needle and h = String.length html in
            let rec go i =
              i + n <= h && (String.sub html i n = needle || go (i + 1))
            in
            n > 0 && go 0
          in
          Alcotest.(check bool) "contains SVG" true (contains "<svg");
          (* The averaged error-vs-cost values in the report's data tables
             must be exactly the values [Runs.curves_for] reports. *)
          let check_curve name curve =
            List.iter
              (fun (p : Learner.eval_point) ->
                let cell v = Printf.sprintf "<td>%.12g</td>" v in
                if not (contains (cell p.cost_seconds)) then
                  Alcotest.failf "%s: cost %.12g missing from report" name
                    p.cost_seconds;
                if not (contains (cell p.rmse)) then
                  Alcotest.failf "%s: rmse %.12g missing from report" name
                    p.rmse)
              curve
          in
          check_curve "fixed" curves.all_observations;
          check_curve "one" curves.one_observation;
          check_curve "adaptive" curves.variable_observations)

let () =
  Alcotest.run "events"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "mixed JSONL parsing" `Quick test_of_lines_mixed;
        ] );
      ( "sink",
        [
          Alcotest.test_case "sorted by run and seq" `Quick
            test_sink_sorts_by_run_and_seq;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "stream identical across jobs" `Slow
            test_stream_identical_across_jobs;
          Alcotest.test_case "telemetry off changes nothing" `Slow
            test_output_identical_with_events;
          Alcotest.test_case "revisit flags consistent" `Slow
            test_revisit_flags_consistent;
          Alcotest.test_case "eval events match curve" `Quick
            test_eval_events_match_curve;
        ] );
      ( "report",
        [
          Alcotest.test_case "CSV export" `Quick test_csv_export;
          Alcotest.test_case "HTML curves match curves_for" `Slow
            test_html_report_matches_curves;
        ] );
    ]
