(* The concurrency-analysis layer: vector-clock laws, FastTrack epoch
   handling, the cooperative model-checking scheduler, race/deadlock
   detection on deliberately-broken fixtures, and schedule-invariance of
   the execution engine's observable behavior at any job count. *)

module Vclock = Altune_conc.Vclock
module Racecheck = Altune_conc.Racecheck
module Sched = Altune_conc.Sched
module Policy = Altune_conc.Policy
module Scenarios = Altune_conc.Scenarios
module Explore = Altune_conc.Explore
module Bench_diff = Altune_obs.Bench_diff
module Json = Altune_obs.Json
module Rng = Altune_prng.Rng

(* --- Vclock: partial-order laws (QCheck) ------------------------------- *)

let clock_gen = QCheck.(list_of_size QCheck.Gen.(int_range 0 6) (int_bound 5))

let prop_leq_reflexive =
  QCheck.Test.make ~name:"leq is reflexive" ~count:200 clock_gen (fun l ->
      let v = Vclock.of_list l in
      Vclock.leq v v)

let prop_join_upper_bound =
  QCheck.Test.make ~name:"join is an upper bound of both arguments"
    ~count:200
    QCheck.(pair clock_gen clock_gen)
    (fun (la, lb) ->
      let a = Vclock.of_list la and b = Vclock.of_list lb in
      let j = Vclock.copy a in
      Vclock.join ~into:j b;
      Vclock.leq a j && Vclock.leq b j)

let prop_join_commutative =
  QCheck.Test.make ~name:"join is commutative" ~count:200
    QCheck.(pair clock_gen clock_gen)
    (fun (la, lb) ->
      let ab = Vclock.of_list la in
      Vclock.join ~into:ab (Vclock.of_list lb);
      let ba = Vclock.of_list lb in
      Vclock.join ~into:ba (Vclock.of_list la);
      Vclock.to_list ab = Vclock.to_list ba)

let prop_join_monotone =
  QCheck.Test.make ~name:"join is monotone (a <= b implies a+c <= b+c)"
    ~count:200
    QCheck.(triple clock_gen clock_gen clock_gen)
    (fun (la, lb, lc) ->
      let a = Vclock.of_list la and b = Vclock.of_list lb in
      (* Force a <= b by joining a into b first. *)
      Vclock.join ~into:b a;
      let ac = Vclock.copy a and bc = Vclock.copy b in
      Vclock.join ~into:ac (Vclock.of_list lc);
      Vclock.join ~into:bc (Vclock.of_list lc);
      Vclock.leq ac bc)

let prop_compare_po_consistent =
  QCheck.Test.make ~name:"compare_po agrees with leq both ways" ~count:200
    QCheck.(pair clock_gen clock_gen)
    (fun (la, lb) ->
      let a = Vclock.of_list la and b = Vclock.of_list lb in
      let le = Vclock.leq a b and ge = Vclock.leq b a in
      match Vclock.compare_po a b with
      | `Equal -> le && ge
      | `Less -> le && not ge
      | `Greater -> ge && not le
      | `Concurrent -> (not le) && not ge)

let prop_incr_get =
  QCheck.Test.make ~name:"incr bumps exactly one component" ~count:200
    QCheck.(pair clock_gen (int_bound 5))
    (fun (l, i) ->
      let v = Vclock.of_list l in
      let before = List.init 8 (Vclock.get v) in
      Vclock.incr v i;
      List.for_all
        (fun j ->
          Vclock.get v j = List.nth before j + if j = i then 1 else 0)
        (List.init 8 Fun.id))

let prop_epoch_round_trip =
  QCheck.Test.make ~name:"epoch tid/clock round-trip" ~count:200
    QCheck.(pair (int_bound 1000) (int_range 1 100_000))
    (fun (tid, clock) ->
      let e = Vclock.epoch ~tid ~clock in
      Vclock.epoch_tid e = tid
      && Vclock.epoch_clock e = clock
      && not (Vclock.is_none e))

let prop_epoch_leq_matches_component =
  QCheck.Test.make ~name:"epoch_leq is the O(1) component comparison"
    ~count:200
    QCheck.(triple clock_gen (int_bound 5) (int_range 1 8))
    (fun (l, tid, clock) ->
      let c = Vclock.of_list l in
      let e = Vclock.epoch ~tid ~clock in
      Vclock.epoch_leq e c = (clock <= Vclock.get c tid))

let test_epoch_none () =
  Alcotest.(check bool) "none is none" true (Vclock.is_none Vclock.none);
  Alcotest.(check bool)
    "none below everything" true
    (Vclock.epoch_leq Vclock.none (Vclock.create ()))

(* --- FastTrack: epoch-vs-vector promotion edge cases ------------------- *)

let kinds rc = List.map (fun (r : Racecheck.race) -> r.r_kind) (Racecheck.races rc)

let test_read_share_promotion () =
  (* Two concurrent readers promote the cell's read epoch to a full
     vector; a later write unordered with one of them must race against
     that reader, not just the last one. *)
  let rc = Racecheck.create () in
  Racecheck.start_thread rc ~tid:0;
  Racecheck.fork rc ~parent:0 ~child:1;
  Racecheck.fork rc ~parent:0 ~child:2;
  Racecheck.read rc ~tid:1 ~loc:1 ~name:"x" ~site:"t1 read";
  Racecheck.read rc ~tid:2 ~loc:1 ~name:"x" ~site:"t2 read";
  Alcotest.(check (list string)) "concurrent reads don't race" [] (kinds rc);
  Racecheck.write rc ~tid:1 ~loc:1 ~name:"x" ~site:"t1 write";
  Alcotest.(check (list string)) "read-write on promotion" [ "read-write" ]
    (kinds rc);
  match Racecheck.races rc with
  | [ r ] ->
      Alcotest.(check string) "first site" "t2 read" r.r_first.a_site;
      Alcotest.(check string) "second site" "t1 write" r.r_second.a_site
  | rs -> Alcotest.failf "expected exactly one race, got %d" (List.length rs)

let test_join_orders_read () =
  (* After joining the reader, a write is ordered: no false positive. *)
  let rc = Racecheck.create () in
  Racecheck.start_thread rc ~tid:0;
  Racecheck.fork rc ~parent:0 ~child:1;
  Racecheck.read rc ~tid:1 ~loc:1 ~name:"x" ~site:"child read";
  Racecheck.join rc ~parent:0 ~child:1;
  Racecheck.write rc ~tid:0 ~loc:1 ~name:"x" ~site:"parent write";
  Alcotest.(check (list string)) "join orders the accesses" [] (kinds rc)

let test_lock_orders_writes () =
  let rc = Racecheck.create () in
  Racecheck.start_thread rc ~tid:0;
  Racecheck.fork rc ~parent:0 ~child:1;
  Racecheck.fork rc ~parent:0 ~child:2;
  Racecheck.acquire rc ~tid:1 ~lock:7;
  Racecheck.write rc ~tid:1 ~loc:1 ~name:"x" ~site:"t1 locked write";
  Racecheck.release rc ~tid:1 ~lock:7;
  Racecheck.acquire rc ~tid:2 ~lock:7;
  Racecheck.write rc ~tid:2 ~loc:1 ~name:"x" ~site:"t2 locked write";
  Racecheck.release rc ~tid:2 ~lock:7;
  Alcotest.(check (list string)) "lock hand-off orders writes" [] (kinds rc)

let test_unlocked_writes_race () =
  let rc = Racecheck.create () in
  Racecheck.start_thread rc ~tid:0;
  Racecheck.fork rc ~parent:0 ~child:1;
  Racecheck.fork rc ~parent:0 ~child:2;
  Racecheck.write rc ~tid:1 ~loc:1 ~name:"x" ~site:"t1 write";
  Racecheck.write rc ~tid:2 ~loc:1 ~name:"x" ~site:"t2 write";
  match Racecheck.races rc with
  | [ r ] ->
      Alcotest.(check string) "kind" "write-write" r.r_kind;
      Alcotest.(check string) "both sites named (first)" "t1 write"
        r.r_first.a_site;
      Alcotest.(check string) "both sites named (second)" "t2 write"
        r.r_second.a_site
  | rs -> Alcotest.failf "expected exactly one race, got %d" (List.length rs)

let test_same_thread_never_races () =
  let rc = Racecheck.create () in
  Racecheck.start_thread rc ~tid:0;
  Racecheck.read rc ~tid:0 ~loc:1 ~name:"x" ~site:"r";
  Racecheck.write rc ~tid:0 ~loc:1 ~name:"x" ~site:"w";
  Racecheck.read rc ~tid:0 ~loc:1 ~name:"x" ~site:"r2";
  Alcotest.(check (list string)) "program order is happens-before" []
    (kinds rc)

(* --- Explorer: fixtures and engine scenarios --------------------------- *)

let must_find name =
  match Scenarios.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "scenario %s missing from catalog" name

let test_broken_memo_detected () =
  let r = Explore.run_scenario ~budget:200 ~seed:7 (must_find "broken_memo") in
  Alcotest.(check bool) "fixture passes (race expected and found)" true
    r.passed;
  Alcotest.(check bool) "at least one race" true (r.races <> []);
  List.iter
    (fun (race : Racecheck.race) ->
      Alcotest.(check bool) "first access site named" true
        (String.length race.r_first.a_site > 0);
      Alcotest.(check bool) "second access site named" true
        (String.length race.r_second.a_site > 0);
      Alcotest.(check bool) "sites point into the fixture" true
        (String.length race.r_loc > 0 && race.r_loc = "broken_memo.tbl"))
    r.races

let test_broken_wakeup_deadlocks () =
  let r =
    Explore.run_scenario ~budget:100 ~seed:7 (must_find "broken_wakeup")
  in
  Alcotest.(check bool) "fixture passes (deadlock expected and found)" true
    r.passed;
  Alcotest.(check bool) "deadlocked schedules found" true (r.deadlocks > 0);
  Alcotest.(check bool) "small space exhausted" true r.exhausted

let test_locked_counter_proved () =
  let r =
    Explore.run_scenario ~budget:1000 ~seed:7 (must_find "locked_counter")
  in
  Alcotest.(check bool) "passes" true r.passed;
  Alcotest.(check bool) "space exhausted (a bounded proof)" true r.exhausted;
  Alcotest.(check int) "no races" 0 (List.length r.races);
  Alcotest.(check int) "no deadlocks" 0 r.deadlocks

let test_engine_scenarios_clean () =
  List.iter
    (fun name ->
      let r = Explore.run_scenario ~budget:300 ~seed:11 (must_find name) in
      if not r.passed then
        Alcotest.failf "scenario %s failed:\n%s" name
          (Explore.report_to_string r);
      Alcotest.(check bool)
        (name ^ " explored more than one interleaving")
        true (r.distinct > 1))
    [
      "pool_map_j3";
      "pool_nested";
      "pool_exception";
      "memo_share";
      "memo_retry";
      "memo_clear";
      "fault_retry";
    ]

let test_explore_deterministic () =
  let run () = Explore.run_scenario ~budget:150 ~seed:5 (must_find "memo_share") in
  let a = run () and b = run () in
  Alcotest.(check int) "schedules" a.schedules_run b.schedules_run;
  Alcotest.(check int) "distinct" a.distinct b.distinct;
  Alcotest.(check int) "pruned" a.pruned b.pruned;
  Alcotest.(check int) "steps" a.steps_total b.steps_total

(* --- Schedule-invariance across job counts ----------------------------- *)

(* The engine's promise: progress events (as a multiset), results and
   hit/miss counter deltas do not depend on scheduling — so the
   fingerprint set over many explored schedules must be a singleton, and
   the same singleton at jobs=1 and jobs=4. *)
let fingerprints sc ~seed ~n =
  let acc = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let rng = Rng.create ~seed:(Rng.derive ~seed [ S "fp"; I i ]) in
    let fp = ref None in
    let o =
      Sched.run ~policy:(Policy.random ~rng) (fun () ->
          fp := Some (sc.Scenarios.run ()))
    in
    (match o.Sched.result with
    | Ok () -> ()
    | Error e -> Alcotest.failf "scenario body failed: %s" (Printexc.to_string e));
    match !fp with Some f -> Hashtbl.replace acc f () | None -> ()
  done;
  List.sort compare (Hashtbl.fold (fun k () l -> k :: l) acc [])

let test_jobs_invariance () =
  let j1 = fingerprints (Scenarios.pool_map ~jobs:1) ~seed:3 ~n:10 in
  let j4 = fingerprints (Scenarios.pool_map ~jobs:4) ~seed:3 ~n:40 in
  Alcotest.(check int) "jobs=1 fingerprint is unique" 1 (List.length j1);
  Alcotest.(check int) "jobs=4 fingerprint is unique" 1 (List.length j4);
  (* The fingerprint strings embed the scenario name (which includes the
     job count) nowhere — they are directly comparable. *)
  Alcotest.(check (list string))
    "events and counters identical at jobs=1 and jobs=4" j1 j4

(* --- bench-diff tolerates concheck throughput records ------------------ *)

let record_exn s =
  match Result.bind (Json.of_string s) Bench_diff.record_of_json with
  | Ok r -> r
  | Error e -> Alcotest.failf "record: %s" e

let test_bench_diff_mixed_records () =
  let timing host =
    record_exn
      (Printf.sprintf
         {|{"section": "table1", "scale": "smoke", "jobs": 2, "seconds": 3.0, "host": %S, "cores": 8}|}
         host)
  in
  let concheck seconds rate =
    record_exn
      (Printf.sprintf
         {|{"section": "concheck", "scale": "conc", "jobs": 1, "seconds": %f, "host": "h", "cores": 8, "schedules": 20000, "schedules_per_sec": %f}|}
         seconds rate)
  in
  (* Baseline without any concheck record: the new record is unmatched,
     never an error. *)
  let d = Bench_diff.diff ~baseline:[ timing "h" ] ~current:[ timing "h"; concheck 1.0 20000.0 ] in
  Alcotest.(check int) "timing pair matched" 1 (List.length d.deltas);
  Alcotest.(check int) "concheck record unmatched, not fatal" 1 d.unmatched;
  Alcotest.(check (list string)) "no regression" []
    (List.map
       (fun (dl : Bench_diff.delta) -> dl.section)
       (Bench_diff.regressions ~max_regress:25.0 d));
  (* Both sides carry the concheck record: compared on seconds, rate
     rendered for context. *)
  let d2 =
    Bench_diff.diff
      ~baseline:[ concheck 1.0 20000.0 ]
      ~current:[ concheck 1.1 18000.0 ]
  in
  Alcotest.(check int) "concheck pair matched" 1 (List.length d2.deltas);
  let rendered = Bench_diff.render ~max_regress:25.0 d2 in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "rate shown" true (contains rendered "sched/s")

let () =
  Alcotest.run "conc"
    [
      ( "vclock",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_leq_reflexive;
            prop_join_upper_bound;
            prop_join_commutative;
            prop_join_monotone;
            prop_compare_po_consistent;
            prop_incr_get;
            prop_epoch_round_trip;
            prop_epoch_leq_matches_component;
          ]
        @ [ Alcotest.test_case "epoch none" `Quick test_epoch_none ] );
      ( "fasttrack",
        [
          Alcotest.test_case "read-share promotion" `Quick
            test_read_share_promotion;
          Alcotest.test_case "join orders read" `Quick test_join_orders_read;
          Alcotest.test_case "lock orders writes" `Quick
            test_lock_orders_writes;
          Alcotest.test_case "unlocked writes race" `Quick
            test_unlocked_writes_race;
          Alcotest.test_case "program order" `Quick
            test_same_thread_never_races;
        ] );
      ( "explore",
        [
          Alcotest.test_case "broken memo detected" `Quick
            test_broken_memo_detected;
          Alcotest.test_case "broken wakeup deadlocks" `Quick
            test_broken_wakeup_deadlocks;
          Alcotest.test_case "locked counter proved" `Quick
            test_locked_counter_proved;
          Alcotest.test_case "engine scenarios clean" `Quick
            test_engine_scenarios_clean;
          Alcotest.test_case "deterministic reports" `Quick
            test_explore_deterministic;
        ] );
      ( "invariance",
        [ Alcotest.test_case "jobs 1 vs 4" `Quick test_jobs_invariance ] );
      ( "bench-diff",
        [
          Alcotest.test_case "mixed record files" `Quick
            test_bench_diff_mixed_records;
        ] );
    ]
