(* Fault injection, retry/backoff accounting, dead-config handling, and
   checkpoint/resume: the fault model must be deterministic and
   schedule-free, a resumed run must reproduce the uninterrupted run
   exactly, and a fault-free run must behave as if the fault machinery
   did not exist. *)

module Fault = Altune_exec.Fault
module Problem = Altune_core.Problem
module Cost = Altune_core.Cost
module Dataset = Altune_core.Dataset
module Learner = Altune_core.Learner
module Checkpoint = Altune_core.Checkpoint
module Events = Altune_obs.Events
module Runs = Altune_experiments.Runs
module Scale = Altune_experiments.Scale
module Spapt = Altune_spapt.Spapt
module Rng = Altune_prng.Rng

(* Same synthetic fixture as test_core: 2 integer knobs, smooth bowl plus
   heteroskedastic noise, so learner behaviour is checkable without the
   SPAPT stack. *)
let synthetic ?(noise = 0.05) () =
  let truth c =
    let x = float_of_int c.(0) and y = float_of_int c.(1) in
    1.0
    +. (0.01 *. ((x -. 12.0) ** 2.0))
    +. (0.02 *. ((y -. 5.0) ** 2.0))
  in
  let sigma c = if c.(0) < 5 && c.(1) < 5 then 4.0 *. noise else noise in
  {
    Problem.name = "synthetic";
    dim = 2;
    space_size = 400.0;
    random_config = (fun rng -> [| Rng.int rng 20; Rng.int rng 20 |]);
    features =
      (fun c -> Array.map (fun v -> (float_of_int v -. 9.5) /. 5.766) c);
    measure =
      (fun ~rng ~run_index c ->
        ignore run_index;
        Float.max 1e-6 (truth c *. (1.0 +. Rng.normal ~sigma:(sigma c) rng)));
    compile_seconds = (fun _ -> 0.05);
    prepare = ignore;
  }

let tiny_settings =
  {
    Learner.scaled_settings with
    n_init = 4;
    n_obs_init = 10;
    n_candidates = 20;
    n_max = 80;
    eval_every = 5;
    ref_size = 50;
    model = Altune_core.Surrogate.dynatree ~particles:40 ();
  }

let make_dataset ?(seed = 3) problem =
  Dataset.generate problem ~rng:(Rng.create ~seed) ~n_configs:300
    ~test_fraction:0.25 ~n_obs:10

let curve_eq (a : Learner.eval_point list) (b : Learner.eval_point list) =
  List.length a = List.length b
  && List.for_all2
       (fun (p : Learner.eval_point) (q : Learner.eval_point) ->
         p.iteration = q.iteration && p.examples = q.examples
         && p.observations = q.observations
         && Float.equal p.cost_seconds q.cost_seconds
         && Float.equal p.rmse q.rmse)
       a b

(* --- Spec parsing ------------------------------------------------------ *)

let test_spec_roundtrip () =
  let d = Fault.default in
  (match Fault.of_string (Fault.to_string d) with
  | Ok d' -> Alcotest.(check bool) "default round-trips" true (d = d')
  | Error e -> Alcotest.fail e);
  match Fault.of_string "crash=0.5,timeout=0.25,max_retries=2,backoff=0.5" with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check (float 0.0)) "crash" 0.5 s.crash;
      Alcotest.(check (float 0.0)) "timeout" 0.25 s.timeout;
      Alcotest.(check int) "max_retries" 2 s.max_retries;
      Alcotest.(check (float 0.0)) "backoff" 0.5 s.backoff;
      Alcotest.(check (float 0.0))
        "omitted keys keep defaults" Fault.default.timeout_lost s.timeout_lost;
      Alcotest.(check bool) "canonical string round-trips" true
        (Fault.of_string (Fault.to_string s) = Ok s)

let test_spec_rejects () =
  let bad str =
    match Fault.of_string str with
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should be rejected" str)
    | Error _ -> ()
  in
  bad "crash=1.5";
  bad "crash=-0.1";
  bad "bogus=1";
  bad "crash=0.6,timeout=0.6" (* probabilities must sum to at most 1 *);
  bad "max_retries=-1";
  bad "crash"

(* --- Draws and backoff -------------------------------------------------- *)

let test_draw_deterministic () =
  let spec =
    match Fault.of_string "crash=0.2,timeout=0.2,corrupt=0.2" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let a = Fault.create spec ~seed:7 and b = Fault.create spec ~seed:7 in
  let keys = [ "k1"; "k2"; "k3" ] in
  List.iter
    (fun key ->
      for attempt = 0 to 19 do
        Alcotest.(check bool)
          "same seed, same verdict" true
          (Fault.draw a ~key ~attempt = Fault.draw b ~key ~attempt)
      done)
    keys;
  (* A different seed must not reproduce the same verdict sequence. *)
  let c = Fault.create spec ~seed:8 in
  let differs =
    List.exists
      (fun key ->
        List.exists
          (fun attempt -> Fault.draw a ~key ~attempt <> Fault.draw c ~key ~attempt)
          (List.init 20 Fun.id))
      keys
  in
  Alcotest.(check bool) "seed matters" true differs

let test_draw_extremes () =
  let zero = Fault.create Fault.default ~seed:1 in
  for attempt = 0 to 9 do
    Alcotest.(check bool)
      "all-zero spec never faults" true
      (Fault.draw zero ~key:"k" ~attempt = Fault.Ok)
  done;
  let certain =
    Fault.create { Fault.default with crash = 1.0 } ~seed:1
  in
  for attempt = 0 to 9 do
    Alcotest.(check bool)
      "crash=1 always crashes" true
      (Fault.draw certain ~key:"k" ~attempt = Fault.Crash)
  done

let test_backoff () =
  let spec = { Fault.default with backoff = 2.0 } in
  Alcotest.(check (float 0.0)) "no failures, no backoff" 0.0
    (Fault.backoff_seconds spec ~failures:0);
  Alcotest.(check (float 0.0)) "first failure" 2.0
    (Fault.backoff_seconds spec ~failures:1);
  Alcotest.(check (float 0.0)) "doubles" 4.0
    (Fault.backoff_seconds spec ~failures:2);
  Alcotest.(check (float 0.0)) "doubles again" 8.0
    (Fault.backoff_seconds spec ~failures:3)

(* --- Cost accounting ---------------------------------------------------- *)

let test_cost_failures () =
  let c = Cost.create () in
  Cost.charge_run c 1.0;
  Cost.charge_failure c 2.5;
  Cost.charge_failure c 0.5;
  Alcotest.(check (float 1e-9)) "failure seconds" 3.0 (Cost.failure_seconds c);
  Alcotest.(check int) "failures counted apart from runs" 2 (Cost.failures c);
  Alcotest.(check int) "runs unaffected" 1 (Cost.runs c);
  Alcotest.(check (float 1e-9)) "total includes failures" 4.0
    (Cost.total_seconds c);
  Alcotest.check_raises "negative failure rejected"
    (Invalid_argument "Cost.charge_failure: negative duration") (fun () ->
      Cost.charge_failure c (-1.0))

let test_cost_snapshot_roundtrip () =
  let c = Cost.create () in
  Cost.charge_run c 1.5;
  Cost.charge_compile c ~key:"a" 0.5;
  Cost.charge_failure c 2.0;
  let c' = Cost.of_snapshot (Cost.snapshot c) in
  Alcotest.(check (float 0.0)) "total" (Cost.total_seconds c)
    (Cost.total_seconds c');
  Alcotest.(check int) "runs" (Cost.runs c) (Cost.runs c');
  Alcotest.(check int) "failures" (Cost.failures c) (Cost.failures c');
  (* Compile dedup survives: recharging a snapshotted key is free. *)
  Cost.charge_compile c' ~key:"a" 0.5;
  Alcotest.(check (float 1e-9)) "key still deduped" 0.5
    (Cost.compile_seconds c')

(* --- Learner under faults ----------------------------------------------- *)

let fault_spec_mid =
  match Fault.of_string "crash=0.1,timeout=0.05,corrupt=0.05,backoff=0.5" with
  | Ok s -> s
  | Error e -> failwith e

let test_learner_faulty_deterministic () =
  let problem = synthetic () in
  let d = make_dataset problem in
  let go () =
    Learner.run
      ~fault:(Fault.create fault_spec_mid ~seed:99)
      problem d tiny_settings ~rng:(Rng.create ~seed:5)
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "same curve" true (curve_eq a.curve b.curve);
  Alcotest.(check (float 0.0)) "same cost" a.total_cost b.total_cost;
  Alcotest.(check int) "same runs" a.total_runs b.total_runs

let test_learner_faults_charged () =
  let problem = synthetic () in
  let d = make_dataset problem in
  let clean =
    Learner.run problem d tiny_settings ~rng:(Rng.create ~seed:5)
  in
  let (faulty, lines) =
    Events.with_memory (fun () ->
        Learner.run
          ~fault:(Fault.create fault_spec_mid ~seed:99)
          problem d tiny_settings ~rng:(Rng.create ~seed:5))
  in
  let fault_lines =
    List.filter
      (fun l ->
        match Events.of_lines [ l ] with
        | Ok f ->
            List.exists
              (fun (e : Events.t) ->
                match e.kind with Events.Fault _ -> true | _ -> false)
              f.events
        | Error _ -> false)
      lines
  in
  Alcotest.(check bool) "faults actually injected" true (fault_lines <> []);
  Alcotest.(check bool) "lost seconds charged" true
    (faulty.total_cost > 0.0 && faulty.total_cost <> clean.total_cost)

let test_all_seeds_dead () =
  let problem = synthetic () in
  let d = make_dataset problem in
  let certain = { fault_spec_mid with crash = 1.0; timeout = 0.0; corrupt = 0.0 } in
  match
    Learner.run
      ~fault:(Fault.create certain ~seed:1)
      problem d tiny_settings ~rng:(Rng.create ~seed:5)
  with
  | _ -> Alcotest.fail "expected failure when every seed config dies"
  | exception Failure msg ->
      Alcotest.(check bool) "descriptive message" true
        (String.length msg > 0
        && String.sub msg 0 11 = "Learner.run")

(* --- Checkpoint serialization ------------------------------------------- *)

let capture_mid_state problem d ?fault ~halt_at () =
  let captured = ref None in
  let checkpoint =
    ( 10,
      fun (st : Learner.state) ->
        captured := Some st;
        if st.Learner.st_iteration >= halt_at then `Halt else `Continue )
  in
  (match
     Learner.run ?fault ~checkpoint problem d tiny_settings
       ~rng:(Rng.create ~seed:5)
   with
  | _ -> Alcotest.fail "expected Halted"
  | exception Learner.Halted -> ());
  match !captured with
  | Some st -> st
  | None -> Alcotest.fail "no checkpoint captured"

let test_checkpoint_roundtrip () =
  let problem = synthetic () in
  let d = make_dataset problem in
  let st = capture_mid_state problem d ~halt_at:20 () in
  let meta =
    {
      Checkpoint.bench = "synthetic";
      scale = "smoke";
      seed = 5;
      every = 10;
      fault = Some (Fault.to_string fault_spec_mid, 99);
    }
  in
  match Checkpoint.of_json (Checkpoint.to_json ~meta d st) with
  | Error e -> Alcotest.fail e
  | Ok (meta', d', st') ->
      Alcotest.(check bool) "meta round-trips" true (meta = meta');
      Alcotest.(check bool) "dataset round-trips exactly" true (d = d');
      Alcotest.(check bool) "state round-trips exactly" true (st = st')

let test_checkpoint_save_load () =
  let problem = synthetic () in
  let d = make_dataset problem in
  let st = capture_mid_state problem d ~halt_at:20 () in
  let meta =
    { Checkpoint.bench = "synthetic"; scale = "smoke"; seed = 5; every = 10;
      fault = None }
  in
  let path = Filename.temp_file "altune-ckpt" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Checkpoint.save ~path ~meta d st;
      match Checkpoint.load path with
      | Error e -> Alcotest.fail e
      | Ok (meta', d', st') ->
          Alcotest.(check bool) "meta" true (meta = meta');
          Alcotest.(check bool) "dataset" true (d = d');
          Alcotest.(check bool) "state" true (st = st'))

(* --- Resume ------------------------------------------------------------- *)

let check_resume_matches ?fault () =
  let problem = synthetic () in
  let d = make_dataset problem in
  let full =
    Learner.run ?fault problem d tiny_settings ~rng:(Rng.create ~seed:5)
  in
  let st = capture_mid_state problem d ?fault ~halt_at:20 () in
  Alcotest.(check bool) "halted mid-run" true
    (st.Learner.st_iteration < tiny_settings.Learner.n_max);
  let resumed =
    Learner.run ?fault ~resume:st problem d tiny_settings
      ~rng:(Rng.create ~seed:5)
  in
  Alcotest.(check bool) "identical curve" true
    (curve_eq full.curve resumed.curve);
  Alcotest.(check (float 0.0)) "identical cost" full.total_cost
    resumed.total_cost;
  Alcotest.(check int) "identical runs" full.total_runs resumed.total_runs;
  Alcotest.(check int) "identical examples" full.distinct_examples
    resumed.distinct_examples;
  Alcotest.(check (float 0.0)) "identical rmse" full.final_rmse
    resumed.final_rmse;
  (* The rebuilt surrogate must be the same model, not merely a similar
     one: spot-check predictions across the test pool. *)
  Array.iter
    (fun c ->
      Alcotest.(check (float 0.0))
        "identical prediction" (full.predict c) (resumed.predict c))
    d.test_configs

let test_resume_matches_uninterrupted () = check_resume_matches ()

let test_resume_matches_under_faults () =
  check_resume_matches ~fault:(Fault.create fault_spec_mid ~seed:99) ()

(* A checkpoint taken through serialization (not just in memory) must
   resume identically too: this is the CLI's actual code path. *)
let test_resume_after_serialization () =
  let problem = synthetic () in
  let d = make_dataset problem in
  let full =
    Learner.run problem d tiny_settings ~rng:(Rng.create ~seed:5)
  in
  let st = capture_mid_state problem d ~halt_at:20 () in
  let meta =
    { Checkpoint.bench = "synthetic"; scale = "smoke"; seed = 5; every = 10;
      fault = None }
  in
  match Checkpoint.of_json (Checkpoint.to_json ~meta d st) with
  | Error e -> Alcotest.fail e
  | Ok (_, d', st') ->
      let resumed =
        Learner.run ~resume:st' problem d' tiny_settings
          ~rng:(Rng.create ~seed:5)
      in
      Alcotest.(check bool) "curve survives serialization" true
        (curve_eq full.curve resumed.curve);
      Alcotest.(check (float 0.0)) "cost survives serialization"
        full.total_cost resumed.total_cost

(* --- Schedule independence ---------------------------------------------- *)

let test_fault_events_identical_across_jobs () =
  (* The acceptance criterion: with a non-trivial fault spec, the full
     learner event stream (faults included) is byte-identical at jobs=1
     and jobs=4. *)
  let spec =
    match Fault.of_string "crash=0.05,timeout=0.02,corrupt=0.01" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let run jobs =
    Runs.set_jobs jobs;
    Runs.set_fault (Some spec);
    Runs.clear_cache ();
    Events.with_memory (fun () ->
        Runs.curves_for (Spapt.create "lu") Scale.smoke ~seed:3)
  in
  Fun.protect
    ~finally:(fun () ->
      Runs.set_fault None;
      Runs.set_jobs 1)
    (fun () ->
      let seq, seq_lines = run 1 in
      let par, par_lines = run 4 in
      Alcotest.(check bool) "adaptive curve identical" true
        (curve_eq seq.Runs.variable_observations par.Runs.variable_observations);
      Alcotest.(check int) "same event count" (List.length seq_lines)
        (List.length par_lines);
      Alcotest.(check bool) "event stream byte-identical" true
        (seq_lines = par_lines);
      Alcotest.(check bool) "stream mentions faults" true
        (List.exists
           (fun l ->
             match Events.of_lines [ l ] with
             | Ok f ->
                 List.exists
                   (fun (e : Events.t) ->
                     match e.kind with Events.Fault _ -> true | _ -> false)
                   f.events
             | Error _ -> false)
           seq_lines))

let () =
  Alcotest.run "fault"
    [
      ( "spec",
        [
          Alcotest.test_case "round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "rejects bad specs" `Quick test_spec_rejects;
        ] );
      ( "draws",
        [
          Alcotest.test_case "deterministic" `Quick test_draw_deterministic;
          Alcotest.test_case "extremes" `Quick test_draw_extremes;
          Alcotest.test_case "backoff" `Quick test_backoff;
        ] );
      ( "cost",
        [
          Alcotest.test_case "failure accounting" `Quick test_cost_failures;
          Alcotest.test_case "snapshot round-trip" `Quick
            test_cost_snapshot_roundtrip;
        ] );
      ( "learner",
        [
          Alcotest.test_case "faulty run deterministic" `Quick
            test_learner_faulty_deterministic;
          Alcotest.test_case "faults charged and reported" `Quick
            test_learner_faults_charged;
          Alcotest.test_case "all seeds dead fails descriptively" `Quick
            test_all_seeds_dead;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "json round-trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "save/load round-trip" `Quick
            test_checkpoint_save_load;
          Alcotest.test_case "resume matches uninterrupted" `Quick
            test_resume_matches_uninterrupted;
          Alcotest.test_case "resume matches under faults" `Quick
            test_resume_matches_under_faults;
          Alcotest.test_case "resume after serialization" `Quick
            test_resume_after_serialization;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fault events identical at jobs=1 and jobs=4"
            `Slow test_fault_events_identical_across_jobs;
        ] );
    ]
