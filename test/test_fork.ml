(* Tests for the transformation-prefix trie (compilation forking).
   The trie's whole contract is that it is invisible: resolved kernels,
   dependence summaries, audit verdicts and measured costs must be
   byte/float-identical to from-scratch application, at any job count,
   with any cache capacity. *)

module Spapt = Altune_spapt.Spapt
module Fork = Altune_spapt.Fork
module Verify = Altune_kernellang.Verify
module Dependence = Altune_kernellang.Dependence
module Rng = Altune_prng.Rng
module Pool = Altune_exec.Pool

let all_names = Altune_spapt.Kernels.names

(* A sibling pair: one random configuration and a copy with its last
   knob moved — the shape a batched learner iteration produces, and the
   case where the recipes share every step up to the divergence point. *)
let sibling_pair b rng =
  let base = Spapt.random_config b rng in
  let sibling = Array.copy base in
  let last = Array.length sibling - 1 in
  let knobs = Array.of_list (Spapt.knobs b) in
  let card = Spapt.knob_cardinality knobs.(last) in
  sibling.(last) <- (sibling.(last) + 1 + Rng.int rng (max 1 (card - 1))) mod card;
  (base, sibling)

(* Property: over random sibling pairs on random benchmarks, the trie
   resolves exactly what from-scratch [apply_steps] produces, and its
   cached dependence summaries match a fresh analysis. *)
let prop_trie_vs_scratch =
  QCheck.Test.make ~name:"trie resolution = from-scratch application"
    ~count:60
    QCheck.(pair (int_bound 10) small_int)
    (fun (bench_idx, seed) ->
      let name = List.nth all_names bench_idx in
      let b = Spapt.create name in
      let kernel = Spapt.kernel b in
      let fork = Fork.create kernel in
      let rng = Rng.create ~seed in
      let base, sibling = sibling_pair b rng in
      List.for_all
        (fun c ->
          let steps = Spapt.recipe b c in
          let scratch = Verify.apply_steps steps kernel in
          let resolved = Fork.resolve fork steps in
          match (scratch, resolved) with
          | Ok k_scratch, Ok k_trie ->
              k_scratch = k_trie
              && (match Fork.resolved_summary fork steps with
                 | Error _ -> false
                 | Ok s ->
                     Dependence.summary_dependences s
                     = Dependence.summary_dependences
                         (Dependence.summarize k_scratch))
          | Error _, Error _ -> true
          | Ok _, Error _ | Error _, Ok _ -> false)
        [ base; sibling; base ])

(* Property: the trie-accelerated audit reaches the same verdict as
   [Verify.run] on the same normalized step list. *)
let prop_audit_matches_verify_run =
  QCheck.Test.make ~name:"trie audit verdict = Verify.run" ~count:6
    QCheck.(pair (int_bound 10) small_int)
    (fun (bench_idx, seed) ->
      let name = List.nth all_names bench_idx in
      let b = Spapt.create name in
      let kernel = Spapt.kernel b in
      let fork = Fork.create kernel in
      let rng = Rng.create ~seed in
      let c = Spapt.random_config b rng in
      let steps = Verify.normalize_steps (Spapt.recipe b c) in
      let overrides = Spapt.small_params b in
      let from_trie =
        Fork.audit ~param_overrides:overrides ~subject:name fork steps
      in
      let from_scratch =
        Verify.run ~param_overrides:overrides ~subject:name kernel steps
      in
      Verify.verdict_to_string from_trie
      = Verify.verdict_to_string from_scratch)

(* Forking on vs off: every public measurement surface must agree
   float-for-float, including the noisy one when driven by equal rng
   states. *)
let test_fork_inert_on_measurements () =
  List.iter
    (fun name ->
      let b_fork = Spapt.create name in
      let b_flat = Spapt.create name in
      Spapt.set_fork b_flat false;
      Alcotest.(check bool) "forking on by default" true
        (Spapt.fork_enabled b_fork);
      Alcotest.(check bool) "forking off after set_fork" false
        (Spapt.fork_enabled b_flat);
      let rng = Rng.create ~seed:7 in
      for i = 1 to 25 do
        let c = Spapt.random_config b_fork rng in
        Alcotest.(check (float 0.0))
          "true_runtime" (Spapt.true_runtime b_flat c)
          (Spapt.true_runtime b_fork c);
        Alcotest.(check (float 0.0))
          "compile_seconds"
          (Spapt.compile_seconds b_flat c)
          (Spapt.compile_seconds b_fork c);
        let sample b =
          Spapt.measure b ~rng:(Rng.create ~seed:(1000 + i)) ~run_index:1 c
        in
        Alcotest.(check (float 0.0)) "measure" (sample b_flat) (sample b_fork)
      done;
      let stats = Spapt.fork_stats b_fork in
      Alcotest.(check bool) "trie actually used" true (stats.Fork.nodes > 0))
    [ "mm"; "hessian" ]

(* Batched preparation at jobs 1 vs 4: warming the cache through the
   pool must leave every evaluation bit-identical to sequential
   computation, and to an instance that never prepared at all. *)
let test_prepare_jobs_bit_identity () =
  let name = "mvt" in
  let rng = Rng.create ~seed:11 in
  let reference = Spapt.create name in
  let configs = List.init 40 (fun _ -> Spapt.random_config reference rng) in
  let evaluate b c = (Spapt.true_runtime b c, Spapt.compile_seconds b c) in
  let baseline = List.map (evaluate reference) configs in
  List.iter
    (fun jobs ->
      let b = Spapt.create name in
      let pool = Pool.create ~jobs () in
      Spapt.set_pool b (Some pool);
      Spapt.prepare b configs;
      let got = List.map (evaluate b) configs in
      Pool.shutdown pool;
      List.iter2
        (fun (rt0, cs0) (rt1, cs1) ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "runtime bit-identical at jobs=%d" jobs)
            rt0 rt1;
          Alcotest.(check (float 0.0))
            (Printf.sprintf "compile bit-identical at jobs=%d" jobs)
            cs0 cs1)
        baseline got)
    [ 1; 4 ]

(* A tiny evaluation cache must still produce correct values: eviction
   only ever costs recomputation, never a wrong answer. *)
let test_cache_eviction_correct () =
  let name = "lu" in
  let rng = Rng.create ~seed:13 in
  let unbounded = Spapt.create name in
  let tiny = Spapt.create ~cache_capacity:4 name in
  let configs = List.init 30 (fun _ -> Spapt.random_config unbounded rng) in
  (* Two passes so the second pass re-reads keys the first evicted. *)
  for _ = 1 to 2 do
    List.iter
      (fun c ->
        Alcotest.(check (float 0.0))
          "evicting cache agrees with unbounded"
          (Spapt.true_runtime unbounded c)
          (Spapt.true_runtime tiny c))
      configs
  done

let () =
  Alcotest.run "fork"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_trie_vs_scratch;
          QCheck_alcotest.to_alcotest prop_audit_matches_verify_run;
        ] );
      ( "inertness",
        [
          Alcotest.test_case "measurements identical fork on/off" `Quick
            test_fork_inert_on_measurements;
          Alcotest.test_case "prepare jobs 1 vs 4 bit-identity" `Quick
            test_prepare_jobs_bit_identity;
          Alcotest.test_case "cache eviction only recomputes" `Quick
            test_cache_eviction_correct;
        ] );
    ]
