(* Tests for the active-learning core: cost accounting, dataset handling,
   the learning loop's bookkeeping, and the Table 1 comparison logic.
   The learner is exercised against a synthetic problem with a known
   response surface so behaviour is checkable without the full SPAPT
   stack. *)

module Problem = Altune_core.Problem
module Cost = Altune_core.Cost
module Dataset = Altune_core.Dataset
module Learner = Altune_core.Learner
module Experiment = Altune_core.Experiment
module Rng = Altune_prng.Rng

(* Synthetic problem: 2 integer knobs in [0, 19], response is a smooth
   bowl plus heteroskedastic noise (noisy in one corner). *)
let synthetic ?(noise = 0.05) () =
  let dim = 2 in
  let truth c =
    let x = float_of_int c.(0) and y = float_of_int c.(1) in
    1.0
    +. (0.01 *. ((x -. 12.0) ** 2.0))
    +. (0.02 *. ((y -. 5.0) ** 2.0))
  in
  let sigma c = if c.(0) < 5 && c.(1) < 5 then 4.0 *. noise else noise in
  {
    Problem.name = "synthetic";
    dim;
    space_size = 400.0;
    random_config = (fun rng -> [| Rng.int rng 20; Rng.int rng 20 |]);
    features =
      (fun c ->
        Array.map (fun v -> (float_of_int v -. 9.5) /. 5.766) c);
    measure =
      (fun ~rng ~run_index c ->
        ignore run_index;
        Float.max 1e-6 (truth c *. (1.0 +. Rng.normal ~sigma:(sigma c) rng)));
    compile_seconds = (fun _ -> 0.05);
    prepare = ignore;
  }

let tiny_settings =
  {
    Learner.scaled_settings with
    n_init = 4;
    n_obs_init = 10;
    n_candidates = 20;
    n_max = 80;
    eval_every = 5;
    ref_size = 50;
    model = Altune_core.Surrogate.dynatree ~particles:40 ();
  }

let make_dataset ?(seed = 3) problem =
  Dataset.generate problem ~rng:(Rng.create ~seed) ~n_configs:300
    ~test_fraction:0.25 ~n_obs:10

(* --- Cost --- *)

let test_cost_runs () =
  let c = Cost.create () in
  Cost.charge_run c 1.5;
  Cost.charge_run c 2.5;
  Alcotest.(check (float 1e-9)) "run seconds" 4.0 (Cost.run_seconds c);
  Alcotest.(check int) "runs" 2 (Cost.runs c);
  Alcotest.(check (float 1e-9)) "total" 4.0 (Cost.total_seconds c)

let test_cost_compile_dedupe () =
  let c = Cost.create () in
  Cost.charge_compile c ~key:"a" 0.5;
  Cost.charge_compile c ~key:"a" 0.5;
  Cost.charge_compile c ~key:"b" 0.25;
  Alcotest.(check (float 1e-9)) "compile seconds" 0.75
    (Cost.compile_seconds c);
  Alcotest.(check int) "distinct compiles" 2 (Cost.compiles c)

let test_cost_negative_rejected () =
  let c = Cost.create () in
  Alcotest.check_raises "negative run"
    (Invalid_argument "Cost.charge_run: negative duration") (fun () ->
      Cost.charge_run c (-1.0))

(* --- Dataset --- *)

let test_dataset_shapes () =
  let problem = synthetic () in
  let d = make_dataset problem in
  Alcotest.(check int) "test size" 75 (Array.length d.test_configs);
  Alcotest.(check int) "train size" 225 (Array.length d.train_configs);
  Alcotest.(check int) "labels" 75 (Array.length d.test_means);
  Array.iter
    (fun m ->
      if m <= 0.0 || not (Float.is_finite m) then
        Alcotest.failf "bad test mean %g" m)
    d.test_means

let test_dataset_distinct () =
  let problem = synthetic () in
  let d = make_dataset problem in
  let keys = Hashtbl.create 512 in
  Array.iter
    (fun c -> Hashtbl.replace keys (Problem.key c) ())
    (Array.append d.train_configs d.test_configs);
  Alcotest.(check int) "all distinct" 300 (Hashtbl.length keys)

let test_dataset_exhaustion () =
  let problem = synthetic () in
  match
    Dataset.generate problem ~rng:(Rng.create ~seed:1) ~n_configs:1000
      ~test_fraction:0.5 ~n_obs:2
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected exhaustion error (space has 400 configs)"

(* --- Learner bookkeeping --- *)

let test_fixed_plan_run_counts () =
  let problem = synthetic () in
  let d = make_dataset problem in
  let settings = { tiny_settings with plan = Learner.Fixed 7 } in
  let o = Learner.run problem d settings ~rng:(Rng.create ~seed:5) in
  (* Every iteration (seed or loop) measures exactly 7 times. *)
  Alcotest.(check int) "runs" (80 * 7) o.total_runs;
  Alcotest.(check int) "examples" 80 o.distinct_examples

let test_adaptive_plan_run_counts () =
  let problem = synthetic () in
  let d = make_dataset problem in
  let o = Learner.run problem d tiny_settings ~rng:(Rng.create ~seed:5) in
  (* Seeds take n_obs_init each; every loop iteration takes exactly one. *)
  Alcotest.(check int) "runs" ((4 * 10) + (80 - 4)) o.total_runs;
  Alcotest.(check bool) "examples bounded" true (o.distinct_examples <= 80)

let test_curve_shape () =
  let problem = synthetic () in
  let d = make_dataset problem in
  let o = Learner.run problem d tiny_settings ~rng:(Rng.create ~seed:7) in
  let costs = List.map (fun (p : Learner.eval_point) -> p.cost_seconds) o.curve in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "cost nondecreasing" true (nondecreasing costs);
  Alcotest.(check bool) "has evaluation points" true
    (List.length o.curve >= 2);
  List.iter
    (fun (p : Learner.eval_point) ->
      if not (Float.is_finite p.rmse) || p.rmse < 0.0 then
        Alcotest.failf "bad rmse %g" p.rmse)
    o.curve

let test_learning_reduces_error () =
  let problem = synthetic ~noise:0.02 () in
  let d = make_dataset problem in
  let settings = { tiny_settings with n_max = 200 } in
  let o = Learner.run problem d settings ~rng:(Rng.create ~seed:11) in
  let first = (List.hd o.curve).rmse in
  let best = Experiment.min_rmse o.curve in
  Alcotest.(check bool)
    (Printf.sprintf "error drops (%.4f -> %.4f)" first best)
    true (best < first)

let test_prediction_quality () =
  let problem = synthetic ~noise:0.02 () in
  let d = make_dataset problem in
  let settings = { tiny_settings with n_max = 250 } in
  let o = Learner.run problem d settings ~rng:(Rng.create ~seed:13) in
  (* The bowl's shape must be recovered: centre cheaper than corner. *)
  let centre = o.predict [| 12; 5 |] in
  let corner = o.predict [| 0; 19 |] in
  Alcotest.(check bool)
    (Printf.sprintf "bowl recovered (%.3f < %.3f)" centre corner)
    true (centre < corner)

let test_determinism () =
  let problem = synthetic () in
  let d = make_dataset problem in
  let run () =
    (Learner.run problem d tiny_settings ~rng:(Rng.create ~seed:17))
      .final_rmse
  in
  Alcotest.(check (float 0.0)) "same seed same outcome" (run ()) (run ())

let test_batch_selection () =
  let problem = synthetic () in
  let d = make_dataset problem in
  let batched = { tiny_settings with batch_size = 5 } in
  let o = Learner.run problem d batched ~rng:(Rng.create ~seed:23) in
  (* Batching changes which configurations are chosen, not how many
     observations are paid for. *)
  Alcotest.(check int) "runs unchanged" ((4 * 10) + (80 - 4)) o.total_runs;
  Alcotest.(check bool) "still learns" true (Float.is_finite o.final_rmse)

let test_stop_cost_budget () =
  let problem = synthetic () in
  let d = make_dataset problem in
  (* The mandatory seed phase costs ~60-130s here, so pick a budget above
     it; the check runs between batches, so overshoot is bounded by one
     batch's measurements (~a few seconds). *)
  let budget = 200.0 in
  let settings =
    { tiny_settings with n_max = 5000; stop = [ Learner.Cost_budget budget ] }
  in
  let o = Learner.run problem d settings ~rng:(Rng.create ~seed:29) in
  Alcotest.(check bool)
    (Printf.sprintf "cost %.1f near budget" o.total_cost)
    true
    (o.total_cost >= budget && o.total_cost < budget +. 30.0)

let test_stop_error_below () =
  let problem = synthetic () in
  let d = make_dataset problem in
  let settings =
    { tiny_settings with stop = [ Learner.Error_below 1e9 ] }
  in
  let o = Learner.run problem d settings ~rng:(Rng.create ~seed:31) in
  (* The seed-phase evaluation already satisfies an absurd threshold, so
     no loop iterations run. *)
  Alcotest.(check int) "only seed runs" (4 * 10) o.total_runs

let test_settings_validation () =
  let problem = synthetic () in
  let d = make_dataset problem in
  let invalid settings =
    match Learner.run problem d settings ~rng:(Rng.create ~seed:1) with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid { tiny_settings with n_init = 0 };
  invalid { tiny_settings with n_max = 2; n_init = 5 };
  invalid { tiny_settings with plan = Learner.Fixed 0 };
  invalid { tiny_settings with eval_every = 0 };
  invalid { tiny_settings with batch_size = 0 }

(* --- Raced profiles --- *)

module Race = Altune_core.Race

let noisy_candidates rng means sigma =
  fun i -> Float.max 1e-6 (Rng.normal ~mu:means.(i) ~sigma rng)

let test_race_picks_fastest () =
  let rng = Rng.create ~seed:71 in
  let means = [| 2.0; 1.0; 3.0; 2.5; 1.8 |] in
  let o = Race.select ~measure:(noisy_candidates rng means 0.05) 5 in
  Alcotest.(check int) "winner" 1 o.winner;
  Alcotest.(check bool) "mean close" true (Float.abs (o.mean -. 1.0) < 0.1)

let test_race_cheaper_than_fixed () =
  (* Clearly separated candidates: the race eliminates losers after a few
     observations, far below the 35-per-candidate fixed plan. *)
  let rng = Rng.create ~seed:73 in
  let means = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] in
  let o = Race.select ~measure:(noisy_candidates rng means 0.05) 6 in
  Alcotest.(check bool)
    (Printf.sprintf "total runs %d << 210" o.total_runs)
    true
    (o.total_runs < 60);
  Alcotest.(check int) "winner" 0 o.winner

let test_race_spends_on_close_candidates () =
  let rng = Rng.create ~seed:79 in
  (* Candidates 0 and 1 nearly tied; 2 and 3 clearly worse. *)
  let means = [| 1.00; 1.01; 3.0; 3.5 |] in
  let o = Race.select ~measure:(noisy_candidates rng means 0.08) 4 in
  let r = o.runs_per_candidate in
  Alcotest.(check bool)
    (Printf.sprintf "contenders sampled more (%d,%d vs %d,%d)" r.(0) r.(1)
       r.(2) r.(3))
    true
    (min r.(0) r.(1) > max r.(2) r.(3));
  Alcotest.(check bool) "losers eliminated" true
    (o.eliminated_at.(2) >= 0 && o.eliminated_at.(3) >= 0)

let test_race_single_candidate () =
  let o = Race.select ~measure:(fun _ -> 1.0) 1 in
  Alcotest.(check int) "winner" 0 o.winner;
  Alcotest.(check int) "min obs only" 2 o.total_runs

let test_race_validation () =
  let invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> Race.select ~measure:(fun _ -> 1.0) 0);
  invalid (fun () ->
      Race.select
        ~settings:{ Race.default_settings with min_obs = 1 }
        ~measure:(fun _ -> 1.0) 3)

(* --- Search --- *)

module Search = Altune_core.Search

let bowl_space = Search.space_of_cardinalities [| 20; 20 |]

let bowl c =
  let x = float_of_int c.(0) and y = float_of_int c.(1) in
  ((x -. 13.0) ** 2.0) +. (2.0 *. ((y -. 6.0) ** 2.0))

let test_search_random () =
  let r =
    Search.minimize ~rng:(Rng.create ~seed:1) bowl_space ~predict:bowl
      (Search.Random_sampling 2000)
  in
  Alcotest.(check int) "evaluations" 2000 r.evaluations;
  Alcotest.(check bool) "near optimum" true (r.predicted < 3.0)

let test_search_hill_climbing_exact () =
  let r =
    Search.minimize ~rng:(Rng.create ~seed:2) bowl_space ~predict:bowl
      (Search.Hill_climbing { restarts = 3; max_steps = 100 })
  in
  (* The bowl is unimodal per knob: steepest descent finds the optimum. *)
  Alcotest.(check (float 1e-9)) "exact optimum" 0.0 r.predicted;
  Alcotest.(check bool) "at (13, 6)" true (r.best = [| 13; 6 |])

let test_search_annealing () =
  let r =
    Search.minimize ~rng:(Rng.create ~seed:3) bowl_space ~predict:bowl
      (Search.Annealing
         { steps = 4000; initial_temperature = 20.0; cooling = 0.999 })
  in
  Alcotest.(check bool)
    (Printf.sprintf "near optimum (%.2f)" r.predicted)
    true (r.predicted < 3.0)

let test_search_beats_random_on_budget () =
  (* At equal evaluation budgets, hill climbing beats random sampling on a
     smooth surface. *)
  let budget_random =
    Search.minimize ~rng:(Rng.create ~seed:4) bowl_space ~predict:bowl
      (Search.Random_sampling 300)
  in
  let hc =
    Search.minimize ~rng:(Rng.create ~seed:4) bowl_space ~predict:bowl
      (Search.Hill_climbing { restarts = 2; max_steps = 20 })
  in
  Alcotest.(check bool)
    (Printf.sprintf "hc %.2f <= random %.2f" hc.predicted
       budget_random.predicted)
    true
    (hc.predicted <= budget_random.predicted)

let test_search_validation () =
  let invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () ->
      Search.minimize ~rng:(Rng.create ~seed:1)
        (Search.space_of_cardinalities [||])
        ~predict:(fun _ -> 0.0)
        (Search.Random_sampling 10));
  invalid (fun () ->
      Search.minimize ~rng:(Rng.create ~seed:1) bowl_space ~predict:bowl
        (Search.Annealing
           { steps = 10; initial_temperature = -1.0; cooling = 0.9 }))

(* --- Experiment utilities --- *)

let point i cost rmse =
  {
    Learner.iteration = i;
    examples = i;
    observations = i;
    cost_seconds = cost;
    rmse;
  }

let test_average_curves () =
  let a = [ point 1 10.0 1.0; point 2 20.0 0.5 ] in
  let b = [ point 1 30.0 3.0; point 2 40.0 1.5 ] in
  match Experiment.average_curves [ a; b ] with
  | [ p1; p2 ] ->
      Alcotest.(check (float 1e-9)) "cost 1" 20.0 p1.cost_seconds;
      Alcotest.(check (float 1e-9)) "rmse 1" 2.0 p1.rmse;
      Alcotest.(check (float 1e-9)) "cost 2" 30.0 p2.cost_seconds;
      Alcotest.(check (float 1e-9)) "rmse 2" 1.0 p2.rmse
  | _ -> Alcotest.fail "wrong length"

let test_cost_to_reach () =
  let c = [ point 1 10.0 1.0; point 2 20.0 0.6; point 3 30.0 0.4 ] in
  Alcotest.(check (option (float 1e-9))) "reached" (Some 20.0)
    (Experiment.cost_to_reach c 0.7);
  Alcotest.(check (option (float 1e-9))) "never" None
    (Experiment.cost_to_reach c 0.1)

let test_compare_curves () =
  (* Baseline reaches 0.5 at cost 100; ours reaches 0.4 at cost 10.
     Lowest common = 0.5; ours reaches 0.5 at cost 8. *)
  let baseline = [ point 1 50.0 0.9; point 2 100.0 0.5 ] in
  let ours = [ point 1 8.0 0.5; point 2 10.0 0.4 ] in
  let cmp = Experiment.compare_curves ~baseline ~ours in
  Alcotest.(check (float 1e-9)) "common level" 0.5 cmp.lowest_common_rmse;
  Alcotest.(check (float 1e-9)) "baseline cost" 100.0 cmp.cost_baseline;
  Alcotest.(check (float 1e-9)) "ours cost" 8.0 cmp.cost_ours;
  Alcotest.(check (float 1e-9)) "speedup" 12.5 cmp.speedup

let test_adaptive_beats_fixed_on_cost () =
  (* The headline claim at miniature scale: same error level, much less
     cost.  Uses the quiet synthetic problem where one observation is
     informative. *)
  let problem = synthetic ~noise:0.02 () in
  let d = make_dataset problem in
  let adaptive =
    Learner.run problem d tiny_settings ~rng:(Rng.create ~seed:19)
  in
  let fixed =
    Learner.run problem d
      { tiny_settings with plan = Learner.Fixed 10 }
      ~rng:(Rng.create ~seed:19)
  in
  let cmp =
    Experiment.compare_curves ~baseline:fixed.curve ~ours:adaptive.curve
  in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.2fx > 1.5x" cmp.speedup)
    true (cmp.speedup > 1.5)

let () =
  Alcotest.run "core"
    [
      ( "cost",
        [
          Alcotest.test_case "run accumulation" `Quick test_cost_runs;
          Alcotest.test_case "compile dedupe" `Quick
            test_cost_compile_dedupe;
          Alcotest.test_case "negative rejected" `Quick
            test_cost_negative_rejected;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "shapes" `Quick test_dataset_shapes;
          Alcotest.test_case "distinct" `Quick test_dataset_distinct;
          Alcotest.test_case "exhaustion" `Quick test_dataset_exhaustion;
        ] );
      ( "learner",
        [
          Alcotest.test_case "fixed plan run counts" `Quick
            test_fixed_plan_run_counts;
          Alcotest.test_case "adaptive plan run counts" `Quick
            test_adaptive_plan_run_counts;
          Alcotest.test_case "curve shape" `Quick test_curve_shape;
          Alcotest.test_case "learning reduces error" `Quick
            test_learning_reduces_error;
          Alcotest.test_case "prediction quality" `Slow
            test_prediction_quality;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "batch selection" `Quick test_batch_selection;
          Alcotest.test_case "stop on cost budget" `Quick
            test_stop_cost_budget;
          Alcotest.test_case "stop on error" `Quick test_stop_error_below;
          Alcotest.test_case "settings validation" `Quick
            test_settings_validation;
        ] );
      ( "race",
        [
          Alcotest.test_case "picks fastest" `Quick test_race_picks_fastest;
          Alcotest.test_case "cheaper than fixed" `Quick
            test_race_cheaper_than_fixed;
          Alcotest.test_case "spends on contenders" `Quick
            test_race_spends_on_close_candidates;
          Alcotest.test_case "single candidate" `Quick
            test_race_single_candidate;
          Alcotest.test_case "validation" `Quick test_race_validation;
        ] );
      ( "search",
        [
          Alcotest.test_case "random sampling" `Quick test_search_random;
          Alcotest.test_case "hill climbing exact" `Quick
            test_search_hill_climbing_exact;
          Alcotest.test_case "annealing" `Quick test_search_annealing;
          Alcotest.test_case "beats random" `Quick
            test_search_beats_random_on_budget;
          Alcotest.test_case "validation" `Quick test_search_validation;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "average curves" `Quick test_average_curves;
          Alcotest.test_case "cost to reach" `Quick test_cost_to_reach;
          Alcotest.test_case "compare curves" `Quick test_compare_curves;
          Alcotest.test_case "adaptive beats fixed" `Slow
            test_adaptive_beats_fixed_on_cost;
        ] );
    ]
