(* The deterministic parallel execution engine: pool ordering, exception
   propagation, progress events, nested fan-out, the compute-once memo,
   and bit-identical experiment curves at any job count. *)

module Pool = Altune_exec.Pool
module Memo = Altune_exec.Memo
module Runs = Altune_experiments.Runs
module Scale = Altune_experiments.Scale
module Spapt = Altune_spapt.Spapt
module Rng = Altune_prng.Rng
module Learner = Altune_core.Learner

(* --- Pool ------------------------------------------------------------- *)

let test_map_sizes () =
  Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.(check (list int)) "empty" [] (Pool.map p (fun x -> x) []);
      Alcotest.(check (list int)) "one" [ 9 ] (Pool.map p (fun x -> x * x) [ 3 ]);
      let n = 100 in
      let xs = List.init n (fun i -> i) in
      Alcotest.(check (list int))
        "many, in input order"
        (List.map (fun x -> x * x) xs)
        (Pool.map p (fun x -> x * x) xs))

let test_map_jobs_one_inline () =
  (* jobs=1 spawns no domains and runs inline; still the same results. *)
  Pool.with_pool ~jobs:1 (fun p ->
      Alcotest.(check (list int))
        "sequential pool" [ 1; 4; 9 ]
        (Pool.map p (fun x -> x * x) [ 1; 2; 3 ]))

let test_mapi () =
  Pool.with_pool ~jobs:2 (fun p ->
      Alcotest.(check (list int))
        "index passed" [ 10; 21; 32 ]
        (Pool.mapi p (fun i x -> (10 * x) + i) [ 1; 2; 3 ]))

let test_map_reduce () =
  Pool.with_pool ~jobs:4 (fun p ->
      let n = 200 in
      let total =
        Pool.map_reduce p
          ~map:(fun x -> x * x)
          ~reduce:( + ) ~init:0
          (List.init n (fun i -> i))
      in
      let expect = n * (n - 1) * ((2 * n) - 1) / 6 in
      Alcotest.(check int) "sum of squares" expect total)

exception Boom of int

let test_exception_propagation () =
  (* Every task still runs (no silent loss), and the lowest-indexed
     failure is the one re-raised. *)
  let ran = Atomic.make 0 in
  Pool.with_pool ~jobs:4 (fun p ->
      match
        Pool.map p
          (fun i ->
            Atomic.incr ran;
            if i = 3 || i = 7 then raise (Boom i);
            i)
          (List.init 10 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          Alcotest.(check int) "first failure by index" 3 i;
          Alcotest.(check int) "all tasks ran" 10 (Atomic.get ran))

let test_nested_exception_original () =
  (* A raise inside a *nested* fan-out must surface the original
     exception (constructor and payload intact, backtrace captured at the
     raise site), not a helper-mangled one — and every inner task still
     runs. *)
  let ran = Atomic.make 0 in
  Pool.with_pool ~jobs:2 (fun p ->
      match
        Pool.map p
          (fun row ->
            Pool.map p
              (fun col ->
                Atomic.incr ran;
                if row = 2 && col = 1 then raise (Boom ((10 * row) + col));
                col)
              [ 0; 1; 2 ])
          [ 1; 2; 3 ]
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom v ->
          Alcotest.(check int) "original payload through nested fan-out" 21 v;
          Alcotest.(check int) "inner batch fully drained" 9 (Atomic.get ran))

let test_pool_survives_failed_batch () =
  Pool.with_pool ~jobs:2 (fun p ->
      (match Pool.map p (fun () -> failwith "x") [ (); () ] with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure _ -> ());
      Alcotest.(check (list int))
        "next batch fine" [ 2; 4 ]
        (Pool.map p (fun x -> 2 * x) [ 1; 2 ]))

let test_progress_events () =
  let log = ref [] in
  let lock = Mutex.create () in
  let on_event e =
    Mutex.lock lock;
    log := e :: !log;
    Mutex.unlock lock
  in
  Pool.with_pool ~on_event ~jobs:3 (fun p ->
      ignore (Pool.map ~label:(fun i -> Printf.sprintf "t%d" i) p
                (fun x -> x) (List.init 8 (fun i -> i))));
  let events = List.rev !log in
  let started, finished =
    List.partition (function Pool.Task_started _ -> true | _ -> false) events
  in
  Alcotest.(check int) "8 started" 8 (List.length started);
  Alcotest.(check int) "8 finished" 8 (List.length finished);
  List.iter
    (function
      | Pool.Task_finished { index; label; wall_seconds } ->
          Alcotest.(check string)
            "label carries task name"
            (Printf.sprintf "t%d" index)
            label;
          Alcotest.(check bool) "non-negative wall time" true
            (wall_seconds >= 0.0)
      | Pool.Task_started { index; label } ->
          Alcotest.(check string)
            "label carries task name"
            (Printf.sprintf "t%d" index)
            label)
    events

let test_nested_map () =
  (* A task fanning out again on the same pool must not deadlock: the
     inner map helps drain the queue. *)
  Pool.with_pool ~jobs:2 (fun p ->
      let grids =
        Pool.map p
          (fun row -> Pool.map p (fun col -> (10 * row) + col) [ 0; 1; 2 ])
          [ 1; 2; 3 ]
      in
      Alcotest.(check (list (list int)))
        "nested results"
        [ [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ] ]
        grids)

let test_default_jobs () =
  Alcotest.(check bool) "at least one" true (Pool.default_jobs () >= 1);
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Pool.create: jobs must be at least 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

(* --- Memo ------------------------------------------------------------- *)

let test_memo_compute_once () =
  let m : (string, int) Memo.t = Memo.create () in
  let calls = Atomic.make 0 in
  let compute () =
    Atomic.incr calls;
    41 + 1
  in
  Alcotest.(check int) "computed" 42 (Memo.find_or_compute m "k" compute);
  Alcotest.(check int) "cached" 42 (Memo.find_or_compute m "k" compute);
  Alcotest.(check int) "one computation" 1 (Atomic.get calls);
  Alcotest.(check (option int)) "find_opt" (Some 42) (Memo.find_opt m "k");
  Alcotest.(check bool) "mem" true (Memo.mem m "k");
  Alcotest.(check int) "length" 1 (Memo.length m);
  Memo.clear m;
  Alcotest.(check (option int)) "cleared" None (Memo.find_opt m "k")

let test_memo_concurrent_compute_once () =
  (* Many domains asking for the same key: the slow computation runs once
     and everyone shares the value. *)
  let m : (int, int) Memo.t = Memo.create () in
  let calls = Atomic.make 0 in
  Pool.with_pool ~jobs:4 (fun p ->
      let vs =
        Pool.map p
          (fun _ ->
            Memo.find_or_compute m 7 (fun () ->
                Atomic.incr calls;
                Unix.sleepf 0.05;
                700))
          (List.init 8 (fun i -> i))
      in
      Alcotest.(check (list int)) "shared value" (List.init 8 (fun _ -> 700)) vs);
  Alcotest.(check int) "computed once" 1 (Atomic.get calls)

let test_memo_failure_retries () =
  let m : (string, int) Memo.t = Memo.create () in
  let calls = Atomic.make 0 in
  (match
     Memo.find_or_compute m "k" (fun () ->
         Atomic.incr calls;
         failwith "flaky")
   with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ());
  Alcotest.(check int) "entry dropped, retry computes" 5
    (Memo.find_or_compute m "k" (fun () ->
         Atomic.incr calls;
         5));
  Alcotest.(check int) "two calls" 2 (Atomic.get calls)

(* --- Seed derivation --------------------------------------------------- *)

let test_derive_distinct () =
  (* The keys actually used by the experiment layer must be pairwise
     distinct (the Hashtbl.hash predecessor collided on such families). *)
  let seeds =
    List.concat_map
      (fun tag ->
        List.concat_map
          (fun name ->
            List.init 10 (fun r -> Rng.derive ~seed:42 [ S tag; I r; S name ]))
          [ "mm"; "mvt"; "adi"; "lu" ])
      [ "fixed"; "one"; "adaptive" ]
  in
  let distinct = List.sort_uniq compare seeds in
  Alcotest.(check int) "no collisions" (List.length seeds)
    (List.length distinct);
  List.iter
    (fun s -> Alcotest.(check bool) "non-negative" true (s >= 0))
    seeds;
  Alcotest.(check bool) "master seed matters" true
    (Rng.derive ~seed:1 [ S "a" ] <> Rng.derive ~seed:2 [ S "a" ]);
  Alcotest.(check bool) "structure matters" true
    (Rng.derive ~seed:1 [ S "ab" ] <> Rng.derive ~seed:1 [ S "a"; S "b" ]);
  Alcotest.(check bool) "int is not its digits" true
    (Rng.derive ~seed:1 [ I 12 ] <> Rng.derive ~seed:1 [ S "12" ]);
  Alcotest.(check int) "deterministic" (Rng.derive ~seed:9 [ S "x"; I 3 ])
    (Rng.derive ~seed:9 [ S "x"; I 3 ])

(* --- Determinism of the experiment layer ------------------------------- *)

let curve_eq (a : Learner.eval_point list) (b : Learner.eval_point list) =
  List.length a = List.length b
  && List.for_all2
       (fun (p : Learner.eval_point) (q : Learner.eval_point) ->
         p.iteration = q.iteration && p.examples = q.examples
         && p.observations = q.observations
         && Float.equal p.cost_seconds q.cost_seconds
         && Float.equal p.rmse q.rmse)
       a b

let test_curves_deterministic_across_jobs () =
  (* The acceptance criterion: curves_for at jobs=1 and jobs=4 must be
     bit-identical. *)
  let run jobs =
    Runs.set_jobs jobs;
    Runs.clear_cache ();
    Runs.curves_for (Spapt.create "lu") Scale.smoke ~seed:3
  in
  let seq = run 1 in
  let par = run 4 in
  Runs.set_jobs 1;
  Alcotest.(check string) "same bench" seq.bench par.bench;
  Alcotest.(check bool) "fixed plan identical" true
    (curve_eq seq.all_observations par.all_observations);
  Alcotest.(check bool) "one-observation plan identical" true
    (curve_eq seq.one_observation par.one_observation);
  Alcotest.(check bool) "adaptive plan identical" true
    (curve_eq seq.variable_observations par.variable_observations)

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map sizes" `Quick test_map_sizes;
          Alcotest.test_case "jobs=1 inline" `Quick test_map_jobs_one_inline;
          Alcotest.test_case "mapi" `Quick test_mapi;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested fan-out raises original" `Quick
            test_nested_exception_original;
          Alcotest.test_case "pool survives failed batch" `Quick
            test_pool_survives_failed_batch;
          Alcotest.test_case "progress events" `Quick test_progress_events;
          Alcotest.test_case "nested map" `Quick test_nested_map;
          Alcotest.test_case "default jobs" `Quick test_default_jobs;
        ] );
      ( "memo",
        [
          Alcotest.test_case "compute once" `Quick test_memo_compute_once;
          Alcotest.test_case "concurrent compute once" `Quick
            test_memo_concurrent_compute_once;
          Alcotest.test_case "failure retries" `Quick
            test_memo_failure_retries;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "derived seeds distinct" `Quick
            test_derive_distinct;
          Alcotest.test_case "curves identical at jobs=1 and jobs=4" `Slow
            test_curves_deterministic_across_jobs;
        ] );
    ]
