(* Tests for the dynamic-tree surrogate: leaf-model math, tree invariants,
   ensemble learning behaviour, and the active-learning scores. *)

module Rng = Altune_prng.Rng
module Leaf_model = Altune_dynatree.Leaf_model
module Tree = Altune_dynatree.Tree
module Dynatree = Altune_dynatree.Dynatree
module Welford = Altune_stats.Welford
module Pool = Altune_exec.Pool

let prior = Leaf_model.default_prior

(* --- Leaf model --- *)

let test_suff () =
  let s =
    List.fold_left Leaf_model.add_suff Leaf_model.empty_suff [ 1.0; 2.0; 3.0 ]
  in
  Alcotest.(check int) "n" 3 s.n;
  Alcotest.(check (float 1e-12)) "sum" 6.0 s.sum;
  Alcotest.(check (float 1e-12)) "sumsq" 14.0 s.sumsq;
  let a = List.fold_left Leaf_model.add_suff Leaf_model.empty_suff [ 1.0 ] in
  let b =
    List.fold_left Leaf_model.add_suff Leaf_model.empty_suff [ 2.0; 3.0 ]
  in
  Alcotest.(check (float 1e-12))
    "merge" s.sumsq (Leaf_model.merge_suff a b).sumsq

let test_posterior_shrinks_to_data () =
  (* With many observations the posterior mean approaches the sample mean
     and the predictive variance approaches the sample variance. *)
  let rng = Rng.create ~seed:5 in
  let acc = ref Leaf_model.empty_suff in
  let w = ref Welford.empty in
  for _ = 1 to 5000 do
    let y = Rng.normal ~mu:2.0 ~sigma:0.5 rng in
    acc := Leaf_model.add_suff !acc y;
    w := Welford.add !w y
  done;
  let p = Leaf_model.predict prior !acc in
  Alcotest.(check (float 0.01)) "mean" (Welford.mean !w) p.mean;
  Alcotest.(check (float 0.02)) "variance" (Welford.variance !w) p.variance

let test_log_marginal_decomposes () =
  (* p(y1, y2) = p(y1) p(y2 | y1): the chain rule must hold exactly. *)
  let s0 = Leaf_model.empty_suff in
  let s1 = Leaf_model.add_suff s0 1.3 in
  let joint = Leaf_model.log_marginal prior (Leaf_model.add_suff s1 0.7) in
  let chain =
    Leaf_model.log_marginal prior s1
    +. Leaf_model.log_predictive_density prior s1 0.7
  in
  Alcotest.(check (float 1e-9)) "chain rule" chain joint

let test_variance_reduction_positive_and_decreasing () =
  let noisy =
    List.fold_left Leaf_model.add_suff Leaf_model.empty_suff
      [ 1.0; 5.0; 2.0; 6.0 ]
  in
  let r_few = Leaf_model.expected_variance_reduction prior noisy in
  Alcotest.(check bool) "positive" true (r_few > 0.0);
  (* Many additional consistent observations make further samples less
     valuable. *)
  let many = ref noisy in
  for _ = 1 to 200 do
    many := Leaf_model.add_suff !many 3.5
  done;
  let r_many = Leaf_model.expected_variance_reduction prior !many in
  Alcotest.(check bool)
    (Printf.sprintf "reduction shrinks (%g < %g)" r_many r_few)
    true (r_many < r_few)

(* --- Tree particle --- *)

let make_tree_with rng data =
  let store = Tree.make_store ~dim:1 in
  let t = ref (Tree.singleton Tree.default_params store []) in
  List.iter
    (fun (x, y) ->
      let i = Tree.append store [| x |] y in
      t := fst (Tree.update ~rng !t i))
    data;
  (!t, store)

let step_data rng n =
  List.init n (fun _ ->
      let x = Rng.uniform rng in
      let y =
        (if x < 0.5 then 1.0 else 4.0) +. Rng.normal ~sigma:0.05 rng
      in
      (x, y))

let test_tree_counts_observations () =
  let rng = Rng.create ~seed:11 in
  let t, store = make_tree_with rng (step_data rng 100) in
  Alcotest.(check int) "store size" 100 (Tree.store_size store);
  Alcotest.(check int) "all observations in tree" 100 (Tree.n_observations t)

let test_tree_grows_on_structure () =
  let rng = Rng.create ~seed:13 in
  let t, _ = make_tree_with rng (step_data rng 200) in
  Alcotest.(check bool) "split found" true (Tree.n_leaves t >= 2)

let test_tree_ref_counts_partition () =
  let rng = Rng.create ~seed:17 in
  let t, _ = make_tree_with rng (step_data rng 150) in
  let refs = Array.init 64 (fun i -> [| float_of_int i /. 64.0 |]) in
  let counts = Tree.leaf_ref_counts t refs in
  let total = Hashtbl.fold (fun _ c acc -> c + acc) counts 0 in
  Alcotest.(check int) "counts partition the reference set" 64 total

let test_tree_predict_separates_step () =
  let rng = Rng.create ~seed:19 in
  let t, _ = make_tree_with rng (step_data rng 300) in
  let low = (Tree.predict t [| 0.2 |]).mean in
  let high = (Tree.predict t [| 0.8 |]).mean in
  Alcotest.(check bool)
    (Printf.sprintf "step recovered (%.2f vs %.2f)" low high)
    true
    (low < 2.0 && high > 3.0)

(* --- Ensemble --- *)

let learn_ensemble ?(n = 400) ~seed f noise =
  let rng = Rng.create ~seed in
  let m = Dynatree.create ~rng 1 in
  for _ = 1 to n do
    let x = [| Rng.uniform rng |] in
    Dynatree.observe m x (f x +. Rng.normal ~sigma:(noise x) rng)
  done;
  m

let step f_low f_high x = if x.(0) < 0.5 then f_low else f_high

let test_ensemble_learns_step () =
  let m = learn_ensemble ~seed:23 (step 1.0 3.0) (fun _ -> 0.05) in
  let p_low = Dynatree.predict m [| 0.25 |] in
  let p_high = Dynatree.predict m [| 0.75 |] in
  Alcotest.(check (float 0.15)) "low region" 1.0 p_low.mean;
  Alcotest.(check (float 0.15)) "high region" 3.0 p_high.mean

let test_ensemble_variance_tracks_noise () =
  (* Heteroskedastic data: predictive variance must be larger where the
     noise is larger — the signal the sequential-analysis loop uses. *)
  let noise x = if x.(0) < 0.5 then 0.02 else 0.5 in
  let m = learn_ensemble ~seed:29 (step 1.0 3.0) noise in
  let v_quiet = Dynatree.predictive_variance m [| 0.25 |] in
  let v_noisy = Dynatree.predictive_variance m [| 0.75 |] in
  Alcotest.(check bool)
    (Printf.sprintf "variance ordering (%.4f < %.4f)" v_quiet v_noisy)
    true
    (v_quiet < v_noisy)

let test_ensemble_counts () =
  let m = learn_ensemble ~seed:31 ~n:50 (step 0.0 1.0) (fun _ -> 0.1) in
  Alcotest.(check int) "observations" 50 (Dynatree.n_observations m);
  Alcotest.(check bool) "leaves grow" true (Dynatree.mean_n_leaves m > 1.0)

let test_ensemble_determinism () =
  let run () =
    let m = learn_ensemble ~seed:37 (step 1.0 3.0) (fun _ -> 0.1) in
    (Dynatree.predict m [| 0.3 |]).mean
  in
  Alcotest.(check (float 0.0)) "same seed, same model" (run ()) (run ())

let test_ensemble_improves_with_data () =
  let rmse m =
    let err = ref 0.0 in
    let k = 50 in
    for i = 0 to k - 1 do
      let x = [| (float_of_int i +. 0.5) /. float_of_int k |] in
      let d = (Dynatree.predict m x).mean -. step 1.0 3.0 x in
      err := !err +. (d *. d)
    done;
    sqrt (!err /. float_of_int k)
  in
  let small = learn_ensemble ~seed:41 ~n:20 (step 1.0 3.0) (fun _ -> 0.3) in
  let large = learn_ensemble ~seed:41 ~n:500 (step 1.0 3.0) (fun _ -> 0.3) in
  Alcotest.(check bool)
    (Printf.sprintf "more data, lower error (%.3f < %.3f)" (rmse large)
       (rmse small))
    true
    (rmse large < rmse small)

let test_alc_prefers_noisy_region () =
  let noise x = if x.(0) < 0.5 then 0.02 else 0.6 in
  let m = learn_ensemble ~seed:43 (step 1.0 3.0) noise in
  let refs = Array.init 100 (fun i -> [| float_of_int i /. 100.0 |]) in
  let scores =
    Dynatree.alc_scores m ~candidates:[| [| 0.25 |]; [| 0.75 |] |] ~refs
  in
  Alcotest.(check bool)
    (Printf.sprintf "noisy candidate wins (%.6f < %.6f)" scores.(0)
       scores.(1))
    true
    (scores.(0) < scores.(1))

let test_alc_nonnegative () =
  let m = learn_ensemble ~seed:47 (step 1.0 3.0) (fun _ -> 0.2) in
  let refs = Array.init 50 (fun i -> [| float_of_int i /. 50.0 |]) in
  let candidates = Array.init 20 (fun i -> [| float_of_int i /. 20.0 |]) in
  let scores = Dynatree.alc_scores m ~candidates ~refs in
  Array.iter
    (fun s ->
      if s < 0.0 || not (Float.is_finite s) then
        Alcotest.failf "invalid ALC score %g" s)
    scores

let test_average_variance_decreases () =
  let rng = Rng.create ~seed:53 in
  let m = Dynatree.create ~rng 1 in
  let refs = Array.init 50 (fun i -> [| float_of_int i /. 50.0 |]) in
  let observe_n n =
    for _ = 1 to n do
      let x = [| Rng.uniform rng |] in
      Dynatree.observe m x (step 1.0 3.0 x +. Rng.normal ~sigma:0.1 rng)
    done
  in
  observe_n 30;
  let v30 = Dynatree.average_variance m ~refs in
  observe_n 470;
  let v500 = Dynatree.average_variance m ~refs in
  Alcotest.(check bool)
    (Printf.sprintf "variance falls (%.4f < %.4f)" v500 v30)
    true (v500 < v30)

(* --- Properties --- *)

let prop_prediction_finite =
  QCheck.Test.make ~name:"predictions stay finite" ~count:20
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 60) (pair (float_bound_exclusive 1.0) (float_range (-5.0) 5.0))))
    (fun (seed, data) ->
      let rng = Rng.create ~seed in
      let params = { Dynatree.default_params with n_particles = 30 } in
      let m = Dynatree.create ~params ~rng 1 in
      List.iter (fun (x, y) -> Dynatree.observe m [| x |] y) data;
      List.for_all
        (fun q ->
          let p = Dynatree.predict m [| q |] in
          Float.is_finite p.mean && Float.is_finite p.variance
          && p.variance >= 0.0)
        [ 0.0; 0.25; 0.5; 0.75; 1.0 ])

(* The incremental ALC caches, the incremental tree-shape stats, and the
   pool-parallel sweeps all replace a from-scratch computation; each must
   agree with its slow oracle to EXACT float equality, not a tolerance —
   any drift breaks the byte-identity guarantees downstream (kill-and-
   resume, jobs-invariant transcripts). *)

let grid2 n f = Array.init n (fun i -> f (float_of_int i /. float_of_int n))

let prop_alc_incremental_matches_full =
  QCheck.Test.make ~name:"incremental ALC = full recompute (exact)" ~count:15
    QCheck.(pair small_int (int_range 20 120))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let params = { Dynatree.default_params with n_particles = 40 } in
      let m = Dynatree.create ~params ~rng 2 in
      let refs = grid2 32 (fun u -> [| u; Float.rem (u *. 7.0) 1.0 |]) in
      let candidates = grid2 12 (fun u -> [| 1.0 -. u; u |]) in
      let ok = ref true in
      for k = 1 to n do
        let x = [| Rng.uniform rng; Rng.uniform rng |] in
        Dynatree.observe m x
          ((if x.(0) < 0.5 then 1.0 else 3.0) +. Rng.normal ~sigma:0.2 rng);
        (* Check at irregular intervals so the caches are maintained
           across many observes between registrations, not just once. *)
        if k mod 7 = 0 || k = n then begin
          let fast = Dynatree.alc_scores m ~candidates ~refs in
          Dynatree.force_full_alc := true;
          let slow =
            Fun.protect
              ~finally:(fun () -> Dynatree.force_full_alc := false)
              (fun () -> Dynatree.alc_scores m ~candidates ~refs)
          in
          if fast <> slow then ok := false
        end
      done;
      !ok)

let prop_tree_stats_incremental =
  QCheck.Test.make ~name:"incremental stats = full traversal" ~count:30
    QCheck.(pair small_int (int_range 1 120))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let store = Tree.make_store ~dim:2 in
      let t = ref (Tree.singleton Tree.default_params store []) in
      let ok = ref true in
      for _ = 1 to n do
        let x = [| Rng.uniform rng; Rng.uniform rng |] in
        let i = Tree.append store x (Rng.normal rng) in
        t := fst (Tree.update ~rng !t i);
        if Tree.stats !t <> Tree.recompute_stats !t then ok := false
      done;
      !ok)

let test_parallel_paths_bit_identical () =
  (* Force the parallel gates open at toy sizes and compare the
     sequential run against a 4-domain pool: predictions and ALC scores
     must match bit for bit (OCaml [=] on floats is exact here). *)
  let run pool =
    let rng = Rng.create ~seed:61 in
    let params = { Dynatree.default_params with n_particles = 40 } in
    let m = Dynatree.create ~params ~rng 2 in
    Dynatree.set_pool m pool;
    let data = Rng.create ~seed:67 in
    for _ = 1 to 150 do
      let x = [| Rng.uniform data; Rng.uniform data |] in
      Dynatree.observe m x
        ((if x.(0) < 0.5 then 1.0 else 3.0) +. Rng.normal ~sigma:0.2 data)
    done;
    let refs = grid2 40 (fun u -> [| u; 1.0 -. u |]) in
    let candidates = grid2 16 (fun u -> [| u; u |]) in
    let scores = Dynatree.alc_scores m ~candidates ~refs in
    let p = Dynatree.predict m [| 0.3; 0.7 |] in
    (Array.to_list scores, p.mean, p.variance)
  in
  let saved_rw = !Dynatree.reweight_par_min_particles in
  let saved_alc = !Dynatree.alc_par_min_work in
  Dynatree.reweight_par_min_particles := 1;
  Dynatree.alc_par_min_work := 1;
  Fun.protect
    ~finally:(fun () ->
      Dynatree.reweight_par_min_particles := saved_rw;
      Dynatree.alc_par_min_work := saved_alc)
    (fun () ->
      let seq = run None in
      let par = Pool.with_pool ~jobs:4 (fun pool -> run (Some pool)) in
      Alcotest.(check bool) "jobs 1 = jobs 4, bit for bit" true (seq = par))

let prop_tree_observation_conservation =
  QCheck.Test.make ~name:"trees never lose observations" ~count:30
    QCheck.(pair small_int (int_range 1 80))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let store = Tree.make_store ~dim:2 in
      let t = ref (Tree.singleton Tree.default_params store []) in
      for _ = 1 to n do
        let x = [| Rng.uniform rng; Rng.uniform rng |] in
        let i = Tree.append store x (Rng.normal rng) in
        t := fst (Tree.update ~rng !t i)
      done;
      Tree.n_observations !t = n)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_prediction_finite;
        prop_tree_observation_conservation;
        prop_alc_incremental_matches_full;
        prop_tree_stats_incremental;
      ]
  in
  Alcotest.run "dynatree"
    [
      ( "leaf model",
        [
          Alcotest.test_case "sufficient statistics" `Quick test_suff;
          Alcotest.test_case "posterior shrinks to data" `Quick
            test_posterior_shrinks_to_data;
          Alcotest.test_case "marginal chain rule" `Quick
            test_log_marginal_decomposes;
          Alcotest.test_case "variance reduction" `Quick
            test_variance_reduction_positive_and_decreasing;
        ] );
      ( "tree",
        [
          Alcotest.test_case "counts observations" `Quick
            test_tree_counts_observations;
          Alcotest.test_case "grows on structure" `Quick
            test_tree_grows_on_structure;
          Alcotest.test_case "ref counts partition" `Quick
            test_tree_ref_counts_partition;
          Alcotest.test_case "predict separates step" `Quick
            test_tree_predict_separates_step;
        ] );
      ( "ensemble",
        [
          Alcotest.test_case "learns step function" `Quick
            test_ensemble_learns_step;
          Alcotest.test_case "variance tracks noise" `Quick
            test_ensemble_variance_tracks_noise;
          Alcotest.test_case "counts" `Quick test_ensemble_counts;
          Alcotest.test_case "deterministic" `Quick test_ensemble_determinism;
          Alcotest.test_case "improves with data" `Slow
            test_ensemble_improves_with_data;
          Alcotest.test_case "average variance decreases" `Slow
            test_average_variance_decreases;
        ] );
      ( "active scores",
        [
          Alcotest.test_case "alc prefers noisy region" `Quick
            test_alc_prefers_noisy_region;
          Alcotest.test_case "alc non-negative" `Quick test_alc_nonnegative;
          Alcotest.test_case "parallel paths bit-identical" `Quick
            test_parallel_paths_bit_identical;
        ] );
      ("properties", qsuite);
    ]
