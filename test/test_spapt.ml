(* Tests for the SPAPT benchmark suite: every recipe must be total over
   its configuration space, transformation recipes must preserve kernel
   semantics (checked through the reference interpreter at small problem
   sizes), and the measurement interface must be deterministic where it
   claims to be. *)

module Spapt = Altune_spapt.Spapt
module Kernels = Altune_spapt.Kernels
module Ast = Altune_kernellang.Ast
module Interp = Altune_kernellang.Interp
module Rng = Altune_prng.Rng
module Welford = Altune_stats.Welford

let all_names = Kernels.names

(* Small problem sizes for interpreter-based semantics checks. *)
let small_overrides = function
  | "adi" -> [ ("N", 7); ("T", 2) ]
  | "atax" | "bicgkernel" | "dgemv3" | "gemver" | "mvt" ->
      [ ("N", 9); ("T", 2) ]
  | "correlation" -> [ ("M", 8); ("N", 7); ("T", 1) ]
  | "hessian" | "jacobi" -> [ ("N", 8); ("T", 2) ]
  | "lu" -> [ ("N", 7); ("T", 1) ]
  | "mm" -> [ ("N", 7); ("T", 1) ]
  | other -> Alcotest.failf "unknown benchmark %s" other

let array_init name i =
  let h = Hashtbl.hash (name, i) land 0xFFFF in
  (float_of_int h /. 65536.0) +. 0.5

let outputs kernel name =
  Interp.run_kernel ~param_overrides:(small_overrides name) ~array_init
    kernel

let approx_equal a b =
  List.for_all2
    (fun (na, va) (nb, vb) ->
      na = nb
      && Array.for_all2
           (fun x y ->
             Float.abs (x -. y)
             <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)))
           va vb)
    a b

let test_catalog () =
  Alcotest.(check int) "11 benchmarks" 11 (List.length all_names);
  List.iter
    (fun name ->
      let b = Spapt.create name in
      Alcotest.(check string) "name" name (Spapt.name b);
      Alcotest.(check bool) "space non-trivial" true
        (Spapt.space_size b > 1000.0);
      Alcotest.(check int) "dim = #knobs" (List.length (Spapt.knobs b))
        (Spapt.dim b);
      match Ast.validate (Spapt.kernel b) with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "%s: invalid kernel: %s" name
            (Format.asprintf "%a" Ast.pp_validation_error e))
    all_names

let test_default_config_is_identity () =
  (* Config all-zeros = every knob off: the transformed kernel must equal
     the original semantically. *)
  List.iter
    (fun name ->
      let b = Spapt.create name in
      let t = Spapt.transformed b (Array.make (Spapt.dim b) 0) in
      if not (approx_equal (outputs (Spapt.kernel b) name) (outputs t name))
      then Alcotest.failf "%s: default config changed semantics" name)
    all_names

let test_random_configs_total_and_sound () =
  (* Every random configuration must transform successfully, validate, and
     preserve semantics at small sizes. *)
  let rng = Rng.create ~seed:77 in
  List.iter
    (fun name ->
      let b = Spapt.create name in
      let reference = outputs (Spapt.kernel b) name in
      for _ = 1 to 6 do
        let c = Spapt.random_config b rng in
        let t =
          try Spapt.transformed b c
          with Invalid_argument msg ->
            Alcotest.failf "%s %s: %s" name
              (String.concat ";"
                 (List.map string_of_int (Array.to_list c)))
              msg
        in
        (match Ast.validate t with
        | Ok () -> ()
        | Error e ->
            Alcotest.failf "%s: transformed invalid: %s" name
              (Format.asprintf "%a" Ast.pp_validation_error e));
        if not (approx_equal reference (outputs t name)) then
          Alcotest.failf "%s %s: semantics changed" name
            (String.concat ";" (List.map string_of_int (Array.to_list c)))
      done)
    all_names

let test_true_runtime_properties () =
  let rng = Rng.create ~seed:5 in
  List.iter
    (fun name ->
      let b = Spapt.create name in
      let base = Array.make (Spapt.dim b) 0 in
      let r = Spapt.true_runtime b base in
      if not (Float.is_finite r) || r <= 0.0 then
        Alcotest.failf "%s: bad base runtime %g" name r;
      Alcotest.(check (float 0.0)) "memoized deterministic" r
        (Spapt.true_runtime b base);
      let c = Spapt.random_config b rng in
      let rc = Spapt.true_runtime b c in
      if not (Float.is_finite rc) || rc <= 0.0 then
        Alcotest.failf "%s: bad runtime %g" name rc)
    all_names

let test_compile_seconds_grow_with_unrolling () =
  let b = Spapt.create "mm" in
  let base = [| 0; 0; 0; 0; 0; 0 |] in
  let unrolled = [| 0; 0; 0; 0; 0; 31 |] in
  Alcotest.(check bool) "positive" true (Spapt.compile_seconds b base > 0.0);
  Alcotest.(check bool) "unrolled costs more" true
    (Spapt.compile_seconds b unrolled > Spapt.compile_seconds b base)

let test_noise_sigma_field () =
  let b = Spapt.create "correlation" in
  let rng = Rng.create ~seed:13 in
  let sigmas =
    Array.init 300 (fun _ -> Spapt.noise_sigma b (Spapt.random_config b rng))
  in
  Array.iter
    (fun s ->
      if s <= 0.0 || not (Float.is_finite s) then
        Alcotest.failf "bad sigma %g" s)
    sigmas;
  (* Heteroskedastic: the spread across configurations is wide. *)
  let mn = Array.fold_left Float.min sigmas.(0) sigmas in
  let mx = Array.fold_left Float.max sigmas.(0) sigmas in
  Alcotest.(check bool)
    (Printf.sprintf "wide spread (%.4f .. %.4f)" mn mx)
    true
    (mx /. mn > 5.0);
  (* Deterministic per configuration. *)
  let c = Spapt.random_config b rng in
  Alcotest.(check (float 0.0)) "deterministic" (Spapt.noise_sigma b c)
    (Spapt.noise_sigma b c)

let test_measurement_converges () =
  let b = Spapt.create "mvt" in
  let rng = Rng.create ~seed:21 in
  let c = Array.make (Spapt.dim b) 0 in
  let truth = Spapt.true_runtime b c in
  let acc = ref Welford.empty in
  for run_index = 1 to 3000 do
    acc := Welford.add !acc (Spapt.measure b ~rng ~run_index c)
  done;
  let rel = Float.abs (Welford.mean !acc -. truth) /. truth in
  if rel > 0.02 then
    Alcotest.failf "mean of 3000 samples off by %.1f%%" (100.0 *. rel)

let test_mean_runtime () =
  let b = Spapt.create "mvt" in
  let rng = Rng.create ~seed:31 in
  let c = Array.make (Spapt.dim b) 0 in
  let m = Spapt.mean_runtime b ~rng ~n:35 c in
  let truth = Spapt.true_runtime b c in
  if Float.abs (m -. truth) /. truth > 0.2 then
    Alcotest.failf "35-sample mean far from truth: %g vs %g" m truth

let test_features_normalized () =
  let b = Spapt.create "gemver" in
  let rng = Rng.create ~seed:41 in
  let dim = Spapt.dim b in
  let acc = Array.make dim Welford.empty in
  for _ = 1 to 4000 do
    let f = Spapt.features b (Spapt.random_config b rng) in
    Array.iteri (fun i v -> acc.(i) <- Welford.add acc.(i) v) f
  done;
  Array.iteri
    (fun i w ->
      if Float.abs (Welford.mean w) > 0.1 then
        Alcotest.failf "feature %d mean %.3f (should be ~0)" i
          (Welford.mean w);
      if Float.abs (Welford.std w -. 1.0) > 0.1 then
        Alcotest.failf "feature %d std %.3f (should be ~1)" i (Welford.std w))
    acc

let test_invalid_config_rejected () =
  let b = Spapt.create "mm" in
  Alcotest.(check bool) "short config invalid" false
    (Spapt.config_valid b [| 0; 0 |]);
  Alcotest.(check bool) "out-of-range invalid" false
    (Spapt.config_valid b [| 99; 0; 0; 0; 0; 0 |]);
  match Spapt.transformed b [| 99; 0; 0; 0; 0; 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_kernels_lint_clean () =
  (* Every benchmark kernel must pass the static verifier without errors,
     at both default and interpreter-sized parameters. *)
  let module Lint = Altune_kernellang.Lint in
  List.iter
    (fun name ->
      let b = Spapt.create name in
      List.iter
        (fun overrides ->
          match Lint.errors (Lint.lint ?param_overrides:overrides (Spapt.kernel b)) with
          | [] -> ()
          | errs ->
              Alcotest.failf "%s: %d lint error(s); first: %s" name
                (List.length errs)
                (Lint.diagnostic_to_string (List.hd errs)))
        [ None; Some (Spapt.small_params b) ])
    all_names

let test_recipes_audit_sound () =
  (* Spot-check the full soundness audit (legality, lint, dependence
     re-analysis, access counts, differential execution) on a random
     configuration of a few benchmarks; `dune build @check` sweeps all. *)
  let module Verify = Altune_kernellang.Verify in
  let rng = Rng.create ~seed:91 in
  List.iter
    (fun name ->
      let b = Spapt.create name in
      let c = Spapt.random_config b rng in
      let v = Spapt.verify_config b c in
      if not (Verify.ok v) then
        Alcotest.failf "%s: %s" name (Verify.verdict_to_string v))
    [ "mm"; "hessian"; "atax" ]

(* Property: recipes are total and validated over the whole space. *)
let prop_recipe_total =
  QCheck.Test.make ~name:"recipes total over random configurations" ~count:80
    QCheck.(pair (int_bound 10) small_int)
    (fun (bench_idx, seed) ->
      let name = List.nth all_names bench_idx in
      let b = Spapt.create name in
      let rng = Rng.create ~seed in
      let c = Spapt.random_config b rng in
      match Spapt.transformed b c with
      | t -> ( match Ast.validate t with Ok () -> true | Error _ -> false)
      | exception _ -> false)

let () =
  Alcotest.run "spapt"
    [
      ( "catalog",
        [
          Alcotest.test_case "11 benchmarks well-formed" `Quick test_catalog;
          Alcotest.test_case "invalid configs rejected" `Quick
            test_invalid_config_rejected;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "default config is identity" `Quick
            test_default_config_is_identity;
          Alcotest.test_case "random configs sound" `Slow
            test_random_configs_total_and_sound;
          Alcotest.test_case "kernels lint clean" `Quick
            test_kernels_lint_clean;
          Alcotest.test_case "recipes audit sound" `Slow
            test_recipes_audit_sound;
        ] );
      ( "measurement",
        [
          Alcotest.test_case "true runtime" `Quick
            test_true_runtime_properties;
          Alcotest.test_case "compile time grows" `Quick
            test_compile_seconds_grow_with_unrolling;
          Alcotest.test_case "noise field" `Quick test_noise_sigma_field;
          Alcotest.test_case "measurements converge" `Quick
            test_measurement_converges;
          Alcotest.test_case "mean runtime" `Quick test_mean_runtime;
          Alcotest.test_case "features normalized" `Quick
            test_features_normalized;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_recipe_total ]);
    ]
