(* Tests for the kernel linter and the transformation-soundness checker:
   clean kernels produce no errors, intentionally broken kernels produce
   structured diagnostics with locations, and every legality-approved
   transformation sequence passes the full soundness audit. *)

module Ast = Altune_kernellang.Ast
module Parser = Altune_kernellang.Parser
module Lint = Altune_kernellang.Lint
module Verify = Altune_kernellang.Verify

let mm_src =
  {|
kernel mm(N = 8) {
  array A[N][N];
  array B[N][N];
  array C[N][N];
  for i = 0 to N - 1 {
    for j = 0 to N - 1 {
      for k = 0 to N - 1 {
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
      }
    }
  }
}
|}

let mm () = Parser.parse_kernel mm_src

let lint_src ?param_overrides src =
  Lint.lint ?param_overrides (Parser.parse_kernel src)

let find code diags =
  List.find_opt (fun (d : Lint.diagnostic) -> d.code = code) diags

let has ?severity code diags =
  List.exists
    (fun (d : Lint.diagnostic) ->
      d.code = code
      && match severity with None -> true | Some s -> d.severity = s)
    diags

let fail_diags what diags =
  Alcotest.failf "%s:\n%s" what
    (String.concat "\n" (List.map Lint.diagnostic_to_string diags))

let test_clean_kernel () =
  let diags = Lint.lint (mm ()) in
  (match Lint.errors diags with
  | [] -> ()
  | errs -> fail_diags "mm should lint without errors" errs);
  Alcotest.(check int) "no warnings" 0 (Lint.count Lint.Warning diags);
  (* A and B are inputs, so the dataflow pass notes them. *)
  Alcotest.(check bool) "input arrays noted" true
    (has ~severity:Lint.Info "read-never-written" diags)

let test_definite_out_of_bounds () =
  let diags =
    lint_src
      {|
kernel bad(N = 8) {
  array A[N];
  for i = 0 to N - 1 { A[N] = 1.0; }
}
|}
  in
  match find "out-of-bounds" diags with
  | None -> fail_diags "expected an out-of-bounds error" diags
  | Some d ->
      Alcotest.(check bool) "severity" true (d.severity = Lint.Error);
      Alcotest.(check (list string)) "located in loop i" [ "i" ] d.loc.loops;
      Alcotest.(check bool) "statement ordinal set" true (d.loc.stmt > 0);
      Alcotest.(check bool) "snippet names the access" true
        (d.loc.detail = "A[N]")

let test_may_out_of_bounds () =
  let diags =
    lint_src
      {|
kernel edge(N = 8) {
  array A[N];
  for i = 0 to N - 1 { A[i + 1] = A[i]; }
}
|}
  in
  Alcotest.(check bool) "warning emitted" true
    (has ~severity:Lint.Warning "may-out-of-bounds" diags);
  Alcotest.(check bool) "not an error" true (Lint.errors diags = [])

(* The parser runs {!Ast.validate}, so kernels that are broken at the
   scoping level have to be built by mutating a parsed one — which is
   exactly the linter's use case: auditing ASTs produced by code, not by
   the front end. *)
let with_loop_body stmt =
  let k =
    Parser.parse_kernel
      {|
kernel scopes(N = 4) {
  array A[N][N];
  for i = 0 to N - 1 { A[i][0] = 1.0; }
}
|}
  in
  match k.Ast.body with
  | Ast.For l -> { k with Ast.body = Ast.For { l with body = stmt } }
  | _ -> Alcotest.fail "unexpected kernel shape"

let test_scoping_errors () =
  let lhs subs = Ast.Array_lhs ("A", subs) in
  let diags =
    Lint.lint
      (with_loop_body
         (Ast.Assign (lhs [ Ast.Var "i"; Ast.Var "j" ], Ast.Float_lit 1.0)))
  in
  Alcotest.(check bool) "unbound subscript variable" true
    (has ~severity:Lint.Error "unbound-variable" diags);
  let diags =
    Lint.lint
      (with_loop_body (Ast.Assign (lhs [ Ast.Var "i" ], Ast.Float_lit 1.0)))
  in
  Alcotest.(check bool) "rank mismatch" true
    (has ~severity:Lint.Error "rank-mismatch" diags);
  let diags =
    Lint.lint
      (with_loop_body
         (Ast.For
            {
              index = "i";
              lo = Ast.Int_lit 0;
              hi = Ast.Int_lit 3;
              step = 1;
              body =
                Ast.Assign
                  (lhs [ Ast.Var "i"; Ast.Var "i" ], Ast.Float_lit 1.0);
            }))
  in
  Alcotest.(check bool) "duplicate loop index" true
    (has ~severity:Lint.Error "duplicate-loop-index" diags);
  let diags =
    Lint.lint
      (with_loop_body (Ast.Assign (Ast.Scalar_lhs "i", Ast.Float_lit 1.0)))
  in
  Alcotest.(check bool) "assignment to loop index" true
    (has ~severity:Lint.Error "assign-to-index" diags)

let test_non_integer_subscript () =
  let diags =
    lint_src
      {|
kernel f(N = 4) {
  array A[N];
  scalar x;
  for i = 0 to N - 1 { A[x] = 1.0; }
}
|}
  in
  Alcotest.(check bool) "float scalar in index position" true
    (has ~severity:Lint.Error "non-integer-subscript" diags)

let test_nonpositive_step () =
  let k =
    Parser.parse_kernel
      {|
kernel s(N = 4) {
  array A[N];
  for i = 0 to N - 1 { A[i] = 1.0; }
}
|}
  in
  let body =
    match k.Ast.body with
    | Ast.For l -> Ast.For { l with step = 0 }
    | _ -> Alcotest.fail "unexpected kernel shape"
  in
  Alcotest.(check bool) "zero step rejected" true
    (has ~severity:Lint.Error "nonpositive-step" (Lint.lint { k with body }))

let test_empty_loop_and_dataflow () =
  let diags =
    lint_src
      {|
kernel flows(N = 8) {
  array A[N];
  array B[N];
  array C[N];
  for i = 5 to 2 { B[i] = A[i]; }
  for j = 0 to N - 1 { B[j] = A[j]; }
}
|}
  in
  Alcotest.(check bool) "empty loop warned" true
    (has ~severity:Lint.Warning "empty-loop" diags);
  Alcotest.(check bool) "input noted" true
    (has ~severity:Lint.Info "read-never-written" diags);
  Alcotest.(check bool) "output noted" true
    (has ~severity:Lint.Info "write-never-read" diags);
  Alcotest.(check bool) "unused array warned" true
    (has ~severity:Lint.Warning "unused-array" diags)

let test_non_affine_note () =
  let diags =
    lint_src
      {|
kernel gather(N = 4) {
  array A[N];
  array B[N];
  for i = 0 to N - 1 { B[i] = A[(i * i) - (i * i)]; }
}
|}
  in
  Alcotest.(check bool) "non-affine access noted" true
    (has ~severity:Lint.Info "non-affine-access" diags)

let test_param_overrides () =
  (* In bounds at the default N = 8, definitely out at N = 2. *)
  let src =
    {|
kernel p(N = 8) {
  array A[N];
  for i = 3 to 4 { A[i] = 1.0; }
}
|}
  in
  Alcotest.(check bool) "clean at defaults" true
    (Lint.errors (lint_src src) = []);
  Alcotest.(check bool) "error at N = 2" true
    (has ~severity:Lint.Error "out-of-bounds"
       (lint_src ~param_overrides:[ ("N", 2) ] src))

let test_dead_unrolled_copies_not_errors () =
  (* Unrolling by more than the trip count leaves the main loop empty;
     its copies access indices past the array end but never execute, so
     the linter must not report definite errors. *)
  let k = mm () in
  let t =
    match Verify.apply_step (Verify.Unroll { index = "j"; factor = 12 }) k with
    | Ok t -> t
    | Error _ -> Alcotest.fail "unroll refused"
  in
  match Lint.errors (Lint.lint ~param_overrides:[ ("N", 7) ] t) with
  | [] -> ()
  | errs -> fail_diags "dead unrolled copies reported as errors" errs

(* --- Soundness checker --- *)

let test_verify_legal_sequence () =
  let v =
    Verify.run
      ~param_overrides:[ ("N", 7) ]
      ~subject:"mm tiled+jammed+unrolled" (mm ())
      [
        Verify.Tile_nest [ ("i", 4); ("j", 4); ("k", 4) ];
        Verify.Unroll_and_jam { index = "i"; factor = 2 };
        Verify.Unroll { index = "j"; factor = 3 };
      ]
  in
  if not (Verify.ok v) then
    Alcotest.failf "legal sequence failed:\n%s" (Verify.verdict_to_string v)

(* A[i][j] = A[i - 1][j + 1] carries a (<, >) dependence: interchanging
   (and therefore tiling) the nest reorders it. *)
let skewed_src =
  {|
kernel skewed(N = 8) {
  array A[N][N];
  for i = 1 to N - 1 {
    for j = 0 to N - 2 {
      A[i][j] = A[i - 1][j + 1] + 1.0;
    }
  }
}
|}

let test_verify_illegal_interchange () =
  let k = Parser.parse_kernel skewed_src in
  let step = Verify.Tile_nest [ ("i", 2); ("j", 2) ] in
  (match Verify.legality k step with
  | Verify.Fail _ -> ()
  | Verify.Pass | Verify.Skipped _ ->
      Alcotest.fail "tiling a (<, >) nest reported legal");
  let v = Verify.run ~subject:"skewed" k [ step ] in
  Alcotest.(check bool) "verdict fails" false (Verify.ok v);
  Alcotest.(check bool) "legality among failures" true
    (List.exists
       (fun (_, (c : Verify.check)) -> c.check_name = "legality")
       (Verify.failures v))

let test_check_pair_catches_broken_transforms () =
  let original = mm () in
  (* Wrong operand order: same access counts, different values. *)
  let transposed =
    Parser.parse_kernel
      {|
kernel mm(N = 8) {
  array A[N][N];
  array B[N][N];
  array C[N][N];
  for i = 0 to N - 1 {
    for j = 0 to N - 1 {
      for k = 0 to N - 1 {
        C[i][j] = C[i][j] + A[i][k] * B[j][k];
      }
    }
  }
}
|}
  in
  let checks =
    Verify.check_pair
      ~param_overrides:[ ("N", 7) ]
      ~original ~transformed:transposed ()
  in
  Alcotest.(check bool) "differential catches wrong values" true
    (List.exists
       (fun (c : Verify.check) ->
         c.check_name = "differential"
         && match c.status with Verify.Fail _ -> true | _ -> false)
       checks);
  (* Dropped iteration: the access counts no longer match. *)
  let truncated =
    Parser.parse_kernel
      {|
kernel mm(N = 8) {
  array A[N][N];
  array B[N][N];
  array C[N][N];
  for i = 0 to N - 1 {
    for j = 0 to N - 1 {
      for k = 0 to N - 2 {
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
      }
    }
  }
}
|}
  in
  let checks =
    Verify.check_pair
      ~param_overrides:[ ("N", 7) ]
      ~original ~transformed:truncated ()
  in
  Alcotest.(check bool) "access counts catch dropped iterations" true
    (List.exists
       (fun (c : Verify.check) ->
         c.check_name = "access-counts"
         && match c.status with Verify.Fail _ -> true | _ -> false)
       checks)

(* --- Property: every transformation sequence Transform accepts passes
   the full audit (legality, lint, dependence re-analysis, access counts,
   differential execution). --- *)

let step_gen =
  QCheck.Gen.(
    oneof
      [
        map
          (fun f -> Verify.Unroll { index = "k"; factor = 2 + f })
          (int_bound 6);
        map
          (fun f -> Verify.Unroll { index = "j"; factor = 2 + f })
          (int_bound 4);
        map
          (fun f -> Verify.Unroll_and_jam { index = "i"; factor = 2 + f })
          (int_bound 3);
        map
          (fun f -> Verify.Unroll_and_jam { index = "j"; factor = 2 + f })
          (int_bound 3);
        map2
          (fun a b -> Verify.Tile_nest [ ("i", 1 lsl a); ("j", 1 lsl b) ])
          (int_range 1 3) (int_range 1 3);
        map
          (fun t -> Verify.Tile_nest [ ("k", 1 lsl t) ])
          (int_range 1 3);
      ])

let prop_accepted_sequences_audit_clean =
  QCheck.Test.make
    ~name:"accepted transformation sequences pass the soundness audit"
    ~count:40
    (QCheck.make
       ~print:(fun steps ->
         String.concat "; " (List.map Verify.step_to_string steps))
       QCheck.Gen.(list_size (int_range 1 3) step_gen))
    (fun steps ->
      (* Keep the prefix-dependent subset Transform accepts (a step may
         legitimately refuse after an earlier one renamed its loop). *)
      let rec accepted k acc = function
        | [] -> List.rev acc
        | s :: rest -> (
            match Verify.apply_step s k with
            | Ok k' -> accepted k' (s :: acc) rest
            | Error _ -> accepted k acc rest)
      in
      let steps = accepted (mm ()) [] steps in
      let v = Verify.run ~param_overrides:[ ("N", 7) ] (mm ()) steps in
      if Verify.ok v then true
      else QCheck.Test.fail_report (Verify.verdict_to_string v))

let () =
  Alcotest.run "lint"
    [
      ( "lint",
        [
          Alcotest.test_case "clean kernel" `Quick test_clean_kernel;
          Alcotest.test_case "definite out of bounds" `Quick
            test_definite_out_of_bounds;
          Alcotest.test_case "may out of bounds" `Quick
            test_may_out_of_bounds;
          Alcotest.test_case "scoping errors" `Quick test_scoping_errors;
          Alcotest.test_case "non-integer subscript" `Quick
            test_non_integer_subscript;
          Alcotest.test_case "nonpositive step" `Quick test_nonpositive_step;
          Alcotest.test_case "empty loop and dataflow" `Quick
            test_empty_loop_and_dataflow;
          Alcotest.test_case "non-affine note" `Quick test_non_affine_note;
          Alcotest.test_case "parameter overrides" `Quick
            test_param_overrides;
          Alcotest.test_case "dead unrolled copies" `Quick
            test_dead_unrolled_copies_not_errors;
        ] );
      ( "verify",
        [
          Alcotest.test_case "legal sequence" `Quick
            test_verify_legal_sequence;
          Alcotest.test_case "illegal interchange" `Quick
            test_verify_illegal_interchange;
          Alcotest.test_case "broken transforms" `Quick
            test_check_pair_catches_broken_transforms;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_accepted_sequences_audit_clean ]
      );
    ]
