(* The observability layer: JSON round-trips, span nesting and ordering
   under Pool fan-out (the span tree must be identical at any job count),
   histogram bucket edges, atomic counter contention, manifest
   round-trips, trace-summary self-time attribution, and the guarantee
   that tracing never changes experiment output. *)

module Json = Altune_obs.Json
module Bench_diff = Altune_obs.Bench_diff
module Trace = Altune_obs.Trace
module Metrics = Altune_obs.Metrics
module Manifest = Altune_obs.Manifest
module Summary = Altune_obs.Summary
module Quantile = Altune_obs.Quantile
module Flight = Altune_obs.Flight
module Snapshot = Altune_obs.Snapshot
module Pool = Altune_exec.Pool
module Runs = Altune_experiments.Runs
module Scale = Altune_experiments.Scale
module Drivers = Altune_experiments.Drivers

(* --- JSON -------------------------------------------------------------- *)

let rec json_eq a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y -> Float.equal x y
  | Json.String x, Json.String y -> String.equal x y
  | Json.List xs, Json.List ys ->
      List.length xs = List.length ys && List.for_all2 json_eq xs ys
  | Json.Obj xs, Json.Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_eq v1 v2)
           xs ys
  | _ -> false

let roundtrip j =
  match Json.of_string (Json.to_string j) with
  | Ok j' -> j'
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 0.1;
      Json.Float 1e-9;
      Json.Float (-3.25);
      Json.Float 1.7976931348623157e308;
      Json.String "";
      Json.String "with \"quotes\", \\ and \n\t control \x01 chars";
      Json.List [ Json.Int 1; Json.String "two"; Json.Null ];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("b", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %s" (Json.to_string j))
        true
        (json_eq j (roundtrip j)))
    samples

let test_json_int_float_distinct () =
  (* Counters must round-trip as ints; durations as floats. *)
  Alcotest.(check bool) "int stays int" true
    (match Json.of_string "17" with Ok (Json.Int 17) -> true | _ -> false);
  Alcotest.(check bool) "float stays float" true
    (match Json.of_string "17.0" with
    | Ok (Json.Float f) -> Float.equal f 17.0
    | _ -> false);
  Alcotest.(check bool) "int renders bare" true
    (String.equal (Json.to_string (Json.Int 17)) "17");
  Alcotest.(check bool) "float renders with point" true
    (String.contains (Json.to_string (Json.Float 17.0)) '.')

let test_json_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" s)
    bad

(* --- Span trees across job counts -------------------------------------- *)

(* Canonical form of a trace: the span tree with children ordered by a
   stable key (name + index attribute), ignoring ids, timings and
   domains.  Two runs of the same traced program must produce the same
   canonical tree regardless of job count. *)
let canonical_tree lines =
  let spans =
    List.filter_map
      (fun line ->
        match Json.of_string line with
        | Error e -> Alcotest.failf "bad trace line %S: %s" line e
        | Ok j -> (
            match Json.member "ev" j with
            | Some (Json.String "span") ->
                let id =
                  match Option.bind (Json.member "id" j) Json.to_int_opt with
                  | Some i -> i
                  | None -> Alcotest.failf "span without id: %s" line
                in
                let parent =
                  Option.bind (Json.member "parent" j) Json.to_int_opt
                in
                let name =
                  match
                    Option.bind (Json.member "name" j) Json.to_string_opt
                  with
                  | Some n -> n
                  | None -> Alcotest.failf "span without name: %s" line
                in
                let index =
                  Option.bind
                    (Option.bind (Json.member "attrs" j)
                       (Json.member "index"))
                    Json.to_int_opt
                in
                Some (id, (parent, name, index))
            | _ -> None))
      lines
  in
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun (id, (parent, name, index)) ->
      match parent with
      | Some p -> Hashtbl.add children p (id, name, index)
      | None -> roots := (id, name, index) :: !roots)
    spans;
  let rec render (id, name, index) =
    let kids =
      Hashtbl.find_all children id
      |> List.sort (fun (_, n1, i1) (_, n2, i2) ->
             match String.compare n1 n2 with
             | 0 -> compare (i1 : int option) i2
             | c -> c)
    in
    Printf.sprintf "%s%s(%s)" name
      (match index with Some i -> Printf.sprintf "[%d]" i | None -> "")
      (String.concat "," (List.map render kids))
  in
  !roots
  |> List.sort (fun (_, n1, i1) (_, n2, i2) ->
         match String.compare n1 n2 with
         | 0 -> compare (i1 : int option) i2
         | c -> c)
  |> List.map render |> String.concat ";"

let traced_workload ~jobs () =
  Pool.with_pool ~jobs (fun p ->
      Trace.with_span ~name:"root" (fun () ->
          Trace.with_span ~name:"setup" ~phase:"dataset" (fun () -> ());
          ignore
            (Pool.mapi p
               (fun i x ->
                 Trace.with_span ~name:"work" ~phase:"profiling"
                   ~attrs:[ ("index", Trace.Int i) ]
                   (fun () -> x * x))
               (List.init 8 (fun i -> i)))))

let test_span_tree_stable_across_jobs () =
  let tree_at jobs =
    let (), lines = Trace.with_memory (traced_workload ~jobs) in
    canonical_tree lines
  in
  let t1 = tree_at 1 and t4 = tree_at 4 in
  Alcotest.(check string) "same span tree at jobs=1 and jobs=4" t1 t4;
  (* And the tree really has the expected logical shape: every pool task
     is a child of [root] even when it ran on another domain. *)
  Alcotest.(check bool) "tasks parented under root" true
    (let expected_task i =
       Printf.sprintf "pool.task[%d](work[%d]())" i i
     in
     String.equal t1
       (Printf.sprintf "root(%s,setup())"
          (String.concat "," (List.init 8 expected_task))))

let test_span_error_flag () =
  let (), lines =
    Trace.with_memory (fun () ->
        try
          Trace.with_span ~name:"boom" (fun () -> failwith "x")
        with Failure _ -> ())
  in
  let errs =
    List.filter
      (fun l ->
        match Json.of_string l with
        | Ok j -> (
            match
              Option.bind (Json.member "err" j) Json.to_bool_opt
            with
            | Some b -> b
            | None -> false)
        | Error _ -> false)
      lines
  in
  Alcotest.(check int) "one err span" 1 (List.length errs)

let test_add_attrs () =
  let (), lines =
    Trace.with_memory (fun () ->
        Trace.with_span ~name:"outer" (fun () ->
            Trace.add_attrs [ ("late", Trace.Int 9) ]))
  in
  let found =
    List.exists
      (fun l ->
        match Json.of_string l with
        | Ok j ->
            Option.bind
              (Option.bind (Json.member "attrs" j) (Json.member "late"))
              Json.to_int_opt
            = Some 9
        | Error _ -> false)
      lines
  in
  Alcotest.(check bool) "late attr recorded" true found

(* --- Metrics ------------------------------------------------------------ *)

let test_histogram_edges () =
  Metrics.reset ();
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 5.0 |] "t.hist" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 5.0; 7.0 ];
  Alcotest.(check int) "count" 6 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 17.0 (Metrics.histogram_sum h);
  (* A value lands in the first bucket with v <= edge; 7.0 overflows. *)
  Alcotest.(check (list (pair (float 0.0) int)))
    "bucket counts"
    [ (1.0, 2); (2.0, 2); (5.0, 1); (infinity, 1) ]
    (Metrics.bucket_counts h)

let test_histogram_bad_buckets () =
  Metrics.reset ();
  (match Metrics.histogram ~buckets:[||] "t.empty" with
  | _ -> Alcotest.fail "empty buckets accepted"
  | exception Invalid_argument _ -> ());
  match Metrics.histogram ~buckets:[| 1.0; 1.0 |] "t.flat" with
  | _ -> Alcotest.fail "non-increasing buckets accepted"
  | exception Invalid_argument _ -> ()

let test_registry_identity_and_kinds () =
  Metrics.reset ();
  let c1 = Metrics.counter "t.shared" in
  let c2 = Metrics.counter "t.shared" in
  Metrics.incr c1;
  Metrics.incr c2;
  Alcotest.(check int) "same instrument" 2 (Metrics.counter_value c1);
  (match Metrics.gauge "t.shared" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  let _h = Metrics.histogram ~buckets:[| 1.0 |] "t.h" in
  match Metrics.histogram ~buckets:[| 2.0 |] "t.h" with
  | _ -> Alcotest.fail "bucket mismatch accepted"
  | exception Invalid_argument _ -> ()

let test_counter_contention () =
  Metrics.reset ();
  let c = Metrics.counter "t.contended" in
  let h = Metrics.histogram ~buckets:[| 0.5; 1.5 |] "t.contended.h" in
  let per_task = 10_000 in
  Pool.with_pool ~jobs:4 (fun p ->
      ignore
        (Pool.map p
           (fun _ ->
             for _ = 1 to per_task do
               Metrics.incr c;
               Metrics.observe h 1.0
             done)
           (List.init 8 (fun i -> i))));
  Alcotest.(check int) "no lost increments" (8 * per_task)
    (Metrics.counter_value c);
  Alcotest.(check int) "no lost observations" (8 * per_task)
    (Metrics.histogram_count h);
  Alcotest.(check (float 1e-6))
    "atomic float sum" (float_of_int (8 * per_task))
    (Metrics.histogram_sum h)

(* --- Quantile sketches --------------------------------------------------- *)

let sketch_of values =
  let s = Quantile.create () in
  List.iter (Quantile.add s) values;
  s

let probe_qs = [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ]

let check_sketch_agreement what a b ~with_sum =
  Alcotest.(check int) (what ^ ": count") (Quantile.count a) (Quantile.count b);
  Alcotest.(check (float 0.0))
    (what ^ ": max") (Quantile.max_value a) (Quantile.max_value b);
  Alcotest.(check (float 0.0))
    (what ^ ": min") (Quantile.min_value a) (Quantile.min_value b);
  if with_sum then
    Alcotest.(check (float 0.0))
      (what ^ ": sum") (Quantile.sum a) (Quantile.sum b);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s: q%.2f" what q)
        (Quantile.quantile a q) (Quantile.quantile b q))
    probe_qs

let positive_values =
  QCheck.(list_of_size (Gen.int_range 1 200) (float_range 1e-3 1e3))

(* Estimated quantiles stay within the sketch's advertised relative
   error of the exact order statistic (rank = max 1 (ceil q*n)). *)
let prop_rank_error =
  QCheck.Test.make ~name:"quantile within alpha of exact" ~count:100
    positive_values (fun values ->
      let s = sketch_of values in
      let sorted = List.sort compare values in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let alpha = Quantile.alpha s in
      List.for_all
        (fun q ->
          let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
          let exact = arr.(rank - 1) in
          let est = Quantile.quantile s q in
          Float.abs (est -. exact) <= (1.02 *. alpha *. exact) +. 1e-12)
        probe_qs)

(* Merging is commutative including the float sum: merging two sketches
   into a fresh copy computes sum_a + sum_b each way, and IEEE addition
   of two floats is commutative. *)
let prop_merge_commutative =
  QCheck.Test.make ~name:"merge commutative (incl. sum)" ~count:60
    QCheck.(pair positive_values positive_values)
    (fun (va, vb) ->
      let a = sketch_of va and b = sketch_of vb in
      let ab = Quantile.copy a and ba = Quantile.copy b in
      Quantile.merge_into ab b;
      Quantile.merge_into ba a;
      check_sketch_agreement "a+b = b+a" ab ba ~with_sum:true;
      true)

(* Associative on everything except the sum (integer bucket counts);
   the sum's round-off depends on addition order, so it is excluded. *)
let prop_merge_associative =
  QCheck.Test.make ~name:"merge associative (excl. sum)" ~count:40
    QCheck.(triple positive_values positive_values positive_values)
    (fun (va, vb, vc) ->
      let left =
        let ab = Quantile.copy (sketch_of va) in
        Quantile.merge_into ab (sketch_of vb);
        Quantile.merge_into ab (sketch_of vc);
        ab
      in
      let right =
        let bc = Quantile.copy (sketch_of vb) in
        Quantile.merge_into bc (sketch_of vc);
        let a = Quantile.copy (sketch_of va) in
        Quantile.merge_into a bc;
        a
      in
      check_sketch_agreement "(a+b)+c = a+(b+c)" left right ~with_sum:false;
      true)

let test_quantile_underflow_and_empty () =
  let s = Quantile.create () in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Quantile.quantile s 0.5));
  List.iter (Quantile.add s) [ -3.0; 0.0; nan; infinity; 5.0 ];
  Alcotest.(check int) "every value counted" 5 (Quantile.count s);
  (* Underflow values rank below everything, so the median of one real
     value among four underflows is still clamped into [min, max]. *)
  let est = Quantile.quantile s 1.0 in
  Alcotest.(check bool) "p100 lands on the real value" true
    (Float.abs (est -. 5.0) <= 5.0 *. 1.02 *. Quantile.alpha s)

let test_quantile_json_roundtrip () =
  let s = sketch_of [ 0.004; 0.1; 0.1; 2.5; 40.0 ] in
  let s' = Quantile.of_json (roundtrip (Quantile.to_json s)) in
  check_sketch_agreement "json round-trip" s s' ~with_sum:true

(* The property the server's telemetry relies on: per-task sketches
   merged in task order give the same quantiles at any job count. *)
let test_sketch_jobs_invariant () =
  let merged ~jobs =
    Pool.with_pool ~jobs (fun p ->
        let per_task =
          Pool.map p
            (fun i ->
              let s = Quantile.create () in
              for j = 1 to 500 do
                Quantile.add s
                  (0.001 *. float_of_int (((i * 7919) + (j * 104729)) mod 10_000))
              done;
              s)
            (List.init 8 (fun i -> i))
        in
        let acc = Quantile.create () in
        List.iter (Quantile.merge_into acc) per_task;
        acc)
  in
  check_sketch_agreement "jobs 1 = jobs 4" (merged ~jobs:1) (merged ~jobs:4)
    ~with_sum:true

(* --- Metrics reset ------------------------------------------------------- *)

(* Handles created before a reset must stay valid: the next use
   re-registers the name from zero, or adopts whatever instrument was
   registered under it since (regression: handles used to keep writing
   into dropped cells, invisible to snapshot/render). *)
let test_reset_keeps_handles_valid () =
  Metrics.reset ();
  let c = Metrics.counter "t.reset.c" in
  let g = Metrics.gauge "t.reset.g" in
  let s = Metrics.sketch "t.reset.s" in
  Metrics.add c 10;
  Metrics.set_gauge g 3.5;
  Metrics.record s 1.0;
  Metrics.reset ();
  Metrics.incr c;
  Alcotest.(check int) "stale counter restarts from zero" 1
    (Metrics.counter_value c);
  Alcotest.(check (float 0.0)) "stale gauge restarts from zero" 0.0
    (Metrics.gauge_value g);
  Metrics.record s 2.0;
  Alcotest.(check int) "stale sketch restarts from zero" 1
    (Quantile.count (Metrics.sketch_data s));
  (* The re-registered instrument is visible to the registry again. *)
  (match Json.member "t.reset.c" (Metrics.snapshot ()) with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "re-registered counter missing from snapshot");
  (* Adoption: a fresh handle registered after the reset and the stale
     handle converge on the same cell. *)
  Metrics.reset ();
  let c2 = Metrics.counter "t.reset.c" in
  Metrics.add c2 5;
  Metrics.incr c;
  Alcotest.(check int) "stale handle adopts the new instrument" 6
    (Metrics.counter_value c);
  Alcotest.(check int) "fresh handle sees the same cell" 6
    (Metrics.counter_value c2)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let test_render_prom () =
  Metrics.reset ();
  Metrics.add (Metrics.counter "t.prom.requests") 3;
  Metrics.set_gauge (Metrics.gauge "t.prom.depth") 2.0;
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0 |] "t.prom.lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 5.0 ];
  let s = Metrics.sketch "t.prom.wire" in
  List.iter (Metrics.record s) [ 0.1; 0.2; 0.3 ];
  let out = Metrics.render_prom () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition contains " ^ needle) true
        (contains out needle))
    [
      "# TYPE t_prom_requests counter";
      "t_prom_requests 3";
      "# TYPE t_prom_depth gauge";
      "t_prom_depth 2";
      "# TYPE t_prom_lat histogram";
      "t_prom_lat_bucket{le=\"1\"} 1";
      "t_prom_lat_bucket{le=\"2\"} 2";
      "t_prom_lat_bucket{le=\"+Inf\"} 3";
      "t_prom_lat_count 3";
      "# TYPE t_prom_wire summary";
      "t_prom_wire{quantile=\"0.5\"}";
      "t_prom_wire{quantile=\"0.99\"}";
      "t_prom_wire_count 3";
    ];
  Metrics.reset ()

(* --- Flight recorder ----------------------------------------------------- *)

let test_flight_wraparound () =
  let f = Flight.create ~capacity:4 () in
  for i = 0 to 9 do
    Flight.record f (Printf.sprintf "l%d" i)
  done;
  Alcotest.(check (list string)) "last capacity lines, oldest first"
    [ "l6"; "l7"; "l8"; "l9" ]
    (Flight.dump f);
  Alcotest.(check int) "every line counted" 10 (Flight.total_recorded f);
  Flight.clear f;
  Alcotest.(check (list string)) "clear empties the rings" [] (Flight.dump f)

let test_flight_domain_isolation () =
  let f = Flight.create ~capacity:4 () in
  Flight.record f "main-0";
  Flight.record f "main-1";
  let d =
    Domain.spawn (fun () ->
        Flight.record f "child-0";
        Flight.record f "child-1")
  in
  Domain.join d;
  (* The spawned domain has the higher id, so its ring dumps second;
     within each domain the lines keep emission order. *)
  Alcotest.(check (list string)) "domains isolated, ascending id order"
    [ "main-0"; "main-1"; "child-0"; "child-1" ]
    (Flight.dump f)

(* The recorder only retains lines: an experiment with the flight
   recorder installed produces byte-identical output. *)
let test_output_identical_with_flight () =
  let run () =
    Runs.clear_cache ();
    Drivers.table1 ~benchmarks:[ "hessian" ] ~scale:Scale.smoke ~seed:1 ()
  in
  let plain = run () in
  let f = Flight.create ~capacity:64 () in
  Flight.install f;
  let recorded =
    Fun.protect ~finally:Trace.uninstall (fun () -> run ())
  in
  Alcotest.(check string) "byte-identical table" plain recorded;
  Alcotest.(check bool) "recorder saw trace lines" true
    (Flight.total_recorded f > 0);
  Runs.clear_cache ()

(* --- Snapshot series ----------------------------------------------------- *)

let test_snapshot_rotation () =
  let path = Filename.temp_file "altune-snap" ".jsonl" in
  let w = Snapshot.create ~rotate_after:2 ~keep:2 path in
  for i = 1 to 5 do
    Snapshot.write w (Json.Obj [ ("i", Json.Int i) ])
  done;
  Snapshot.close w;
  let seq p =
    List.filter_map
      (fun j -> Option.bind (Json.member "i" j) Json.to_int_opt)
      (Snapshot.load p)
  in
  Alcotest.(check (list int)) "live file holds the newest" [ 5 ] (seq path);
  Alcotest.(check (list int)) "first rotation" [ 3; 4 ] (seq (path ^ ".1"));
  Alcotest.(check (list int)) "second rotation" [ 1; 2 ] (seq (path ^ ".2"));
  let all =
    List.filter_map
      (fun j -> Option.bind (Json.member "i" j) Json.to_int_opt)
      (Snapshot.load_all path)
  in
  Alcotest.(check (list int)) "load_all is oldest-first" [ 1; 2; 3; 4; 5 ] all;
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".1"; path ^ ".2" ];
  Alcotest.(check (list int)) "missing file is an empty series" []
    (List.filter_map Json.to_int_opt (Snapshot.load path))

(* --- Manifest ----------------------------------------------------------- *)

let test_manifest_roundtrip () =
  let m = Manifest.capture ~scale:"smoke" ~jobs:2 ~seed:42 () in
  let line = Json.to_string (Manifest.to_json m) in
  match Json.of_string line with
  | Error e -> Alcotest.failf "manifest reparse: %s" e
  | Ok j -> (
      match Manifest.of_json j with
      | Error e -> Alcotest.failf "manifest of_json: %s" e
      | Ok m' ->
          Alcotest.(check bool) "round-trips" true (m = m');
          Alcotest.(check string) "scale kept" "smoke" m'.Manifest.scale;
          Alcotest.(check int) "jobs kept" 2 m'.Manifest.jobs;
          Alcotest.(check int) "seed kept" 42 m'.Manifest.seed;
          Alcotest.(check bool) "cores probed" true (m'.Manifest.cores >= 1))

(* --- Summary ------------------------------------------------------------ *)

let span ~id ?parent ~name ?phase ~start ~dur () =
  Json.to_string
    (Json.Obj
       ([ ("ev", Json.String "span"); ("id", Json.Int id) ]
       @ (match parent with
         | Some p -> [ ("parent", Json.Int p) ]
         | None -> [])
       @ [ ("name", Json.String name) ]
       @ (match phase with
         | Some p -> [ ("phase", Json.String p) ]
         | None -> [])
       @ [
           ("domain", Json.Int 0);
           ("start", Json.Float start);
           ("dur", Json.Float dur);
         ]))

let test_summary_self_time () =
  (* root [0,10] with children profiling [1,4] and alc [5,7]:
     self(root) = 10 - 3 - 2 = 5, all attributed to "(other)". *)
  let lines =
    [
      Json.to_string
        (Manifest.to_json (Manifest.capture ~scale:"smoke" ~jobs:1 ()));
      span ~id:1 ~name:"root" ~start:0.0 ~dur:10.0 ();
      span ~id:2 ~parent:1 ~name:"p" ~phase:"profiling" ~start:1.0 ~dur:3.0
        ();
      span ~id:3 ~parent:1 ~name:"a" ~phase:"alc" ~start:5.0 ~dur:2.0 ();
    ]
  in
  match Summary.of_lines lines with
  | Error e -> Alcotest.failf "summary: %s" e
  | Ok s ->
      Alcotest.(check int) "span count" 3 s.Summary.span_count;
      Alcotest.(check (float 1e-9)) "wall" 10.0 s.Summary.wall_s;
      Alcotest.(check (float 1e-9)) "busy" 10.0 s.Summary.busy_s;
      let self phase =
        match
          List.find_opt
            (fun r -> String.equal r.Summary.phase phase)
            s.Summary.rows
        with
        | Some r -> r.Summary.self_s
        | None -> Alcotest.failf "missing phase %s" phase
      in
      Alcotest.(check (float 1e-9)) "(other) self" 5.0 (self "(other)");
      Alcotest.(check (float 1e-9)) "profiling self" 3.0 (self "profiling");
      Alcotest.(check (float 1e-9)) "alc self" 2.0 (self "alc");
      Alcotest.(check bool) "manifest recovered" true
        (match s.Summary.manifest with
        | Some m -> String.equal m.Manifest.scale "smoke"
        | None -> false);
      Alcotest.(check (list string)) "no violations at 55%" []
        (Summary.violations s ~max_share:55.0);
      Alcotest.(check int) "violation below 45%" 1
        (List.length (Summary.violations s ~max_share:45.0))

let test_summary_rejects_garbage () =
  (match Summary.of_lines [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty trace accepted");
  match Summary.of_lines [ "not json" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed line accepted"

(* --- Tracing must not change results ------------------------------------ *)

let test_output_identical_with_tracing () =
  let run () =
    Runs.clear_cache ();
    Drivers.table1 ~benchmarks:[ "hessian" ] ~scale:Scale.smoke ~seed:1 ()
  in
  let plain = run () in
  let traced, lines = Trace.with_memory run in
  Alcotest.(check string) "byte-identical table" plain traced;
  Alcotest.(check bool) "trace non-empty" true (List.length lines > 0);
  Runs.clear_cache ()

(* --- Bench-diff --------------------------------------------------------- *)

let record ?host ?cores ~section ~jobs seconds =
  {
    Bench_diff.section;
    scale = "smoke";
    jobs;
    seconds;
    host;
    cores;
    git_rev = None;
    rate = None;
    rate_unit = None;
  }

let test_bench_diff_regression () =
  let baseline =
    [
      record ~host:"vm" ~cores:1 ~section:"table1" ~jobs:2 10.0;
      record ~host:"vm" ~cores:1 ~section:"fig6" ~jobs:2 10.0;
    ]
  in
  let current =
    [
      (* 2x slowdown on table1, within bounds on fig6. *)
      record ~host:"vm" ~cores:1 ~section:"table1" ~jobs:2 20.0;
      record ~host:"vm" ~cores:1 ~section:"fig6" ~jobs:2 11.0;
    ]
  in
  let d = Bench_diff.diff ~baseline ~current in
  Alcotest.(check int) "two comparable sections" 2 (List.length d.deltas);
  (match Bench_diff.regressions ~max_regress:25.0 d with
  | [ r ] ->
      Alcotest.(check string) "regressed section" "table1" r.section;
      Alcotest.(check (float 1e-9)) "delta is +100%" 100.0 r.delta_pct
  | rs -> Alcotest.failf "expected one regression, got %d" (List.length rs));
  (* The threshold is strict: exactly +25% is not a regression. *)
  let d25 =
    Bench_diff.diff
      ~baseline:[ record ~host:"vm" ~cores:1 ~section:"t" ~jobs:1 8.0 ]
      ~current:[ record ~host:"vm" ~cores:1 ~section:"t" ~jobs:1 10.0 ]
  in
  Alcotest.(check int) "+25% passes at --max-regress 25" 0
    (List.length (Bench_diff.regressions ~max_regress:25.0 d25));
  let rendered = Bench_diff.render ~max_regress:25.0 d in
  Alcotest.(check bool) "render flags the regression" true
    (let n = String.length rendered in
     let rec go i =
       i + 10 <= n && (String.sub rendered i 10 = "REGRESSION" || go (i + 1))
     in
     go 0)

let test_bench_diff_skips_incompatible () =
  let baseline =
    [
      record ~host:"vm" ~cores:1 ~section:"table1" ~jobs:2 10.0;
      record ~section:"fig6" ~jobs:2 10.0 (* pre-manifest: no host *);
    ]
  in
  let current =
    [
      record ~host:"other-box" ~cores:8 ~section:"table1" ~jobs:2 99.0;
      record ~section:"fig6" ~jobs:2 99.0;
      record ~host:"vm" ~cores:1 ~section:"table1" ~jobs:4 99.0;
    ]
  in
  let d = Bench_diff.diff ~baseline ~current in
  (* Nothing shares (section, scale, jobs, host, cores): no deltas, so a
     wildly slower run on a different machine never false-fails. *)
  Alcotest.(check int) "no comparable pairs" 0 (List.length d.deltas);
  Alcotest.(check int) "skipped baseline" 1 d.skipped_baseline;
  Alcotest.(check int) "skipped current" 1 d.skipped_current;
  Alcotest.(check int) "unmatched current" 2 d.unmatched;
  Alcotest.(check int) "nothing regresses" 0
    (List.length (Bench_diff.regressions ~max_regress:25.0 d))

let test_bench_diff_parses_null_manifest () =
  let line =
    {|{"section": "table1", "scale": "quick", "jobs": 1, "seconds": 96.9, "manifest": null}|}
  in
  match Json.of_string line with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok j -> (
      match Bench_diff.record_of_json j with
      | Error e -> Alcotest.failf "record: %s" e
      | Ok r ->
          Alcotest.(check bool) "not comparable" true (r.host = None);
          Alcotest.(check (float 0.0)) "seconds kept" 96.9 r.seconds)

let test_bench_diff_last_record_wins () =
  let baseline = [ record ~host:"vm" ~cores:1 ~section:"t" ~jobs:1 10.0 ] in
  let current =
    [
      record ~host:"vm" ~cores:1 ~section:"t" ~jobs:1 50.0 (* stale *);
      record ~host:"vm" ~cores:1 ~section:"t" ~jobs:1 10.5 (* newest *);
    ]
  in
  let d = Bench_diff.diff ~baseline ~current in
  match d.deltas with
  | [ dl ] -> Alcotest.(check (float 1e-9)) "newest compared" 10.5 dl.current_s
  | ds -> Alcotest.failf "expected one delta, got %d" (List.length ds)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "int/float distinct" `Quick
            test_json_int_float_distinct;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span tree stable across jobs" `Quick
            test_span_tree_stable_across_jobs;
          Alcotest.test_case "error flag" `Quick test_span_error_flag;
          Alcotest.test_case "add_attrs" `Quick test_add_attrs;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
          Alcotest.test_case "bad buckets" `Quick test_histogram_bad_buckets;
          Alcotest.test_case "registry identity and kinds" `Quick
            test_registry_identity_and_kinds;
          Alcotest.test_case "counter contention" `Quick
            test_counter_contention;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "underflow and empty" `Quick
            test_quantile_underflow_and_empty;
          Alcotest.test_case "json round-trip" `Quick
            test_quantile_json_roundtrip;
          Alcotest.test_case "merged sketches identical at jobs=1 and jobs=4"
            `Quick test_sketch_jobs_invariant;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_rank_error; prop_merge_commutative; prop_merge_associative ]
      );
      ( "reset",
        [
          Alcotest.test_case "handles survive reset" `Quick
            test_reset_keeps_handles_valid;
          Alcotest.test_case "prometheus exposition" `Quick test_render_prom;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring wraparound" `Quick test_flight_wraparound;
          Alcotest.test_case "per-domain isolation" `Quick
            test_flight_domain_isolation;
          Alcotest.test_case "output identical with recorder on" `Slow
            test_output_identical_with_flight;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "rotation and load_all" `Quick
            test_snapshot_rotation;
        ] );
      ( "manifest",
        [ Alcotest.test_case "round-trip" `Quick test_manifest_roundtrip ] );
      ( "summary",
        [
          Alcotest.test_case "self-time attribution" `Quick
            test_summary_self_time;
          Alcotest.test_case "rejects garbage" `Quick
            test_summary_rejects_garbage;
        ] );
      ( "bench-diff",
        [
          Alcotest.test_case "detects 2x slowdown" `Quick
            test_bench_diff_regression;
          Alcotest.test_case "skips incompatible manifests" `Quick
            test_bench_diff_skips_incompatible;
          Alcotest.test_case "parses manifest:null records" `Quick
            test_bench_diff_parses_null_manifest;
          Alcotest.test_case "last record wins" `Quick
            test_bench_diff_last_record_wins;
        ] );
      ( "integration",
        [
          Alcotest.test_case "output identical with tracing" `Slow
            test_output_identical_with_tracing;
        ] );
    ]
