(* The observability layer: JSON round-trips, span nesting and ordering
   under Pool fan-out (the span tree must be identical at any job count),
   histogram bucket edges, atomic counter contention, manifest
   round-trips, trace-summary self-time attribution, and the guarantee
   that tracing never changes experiment output. *)

module Json = Altune_obs.Json
module Bench_diff = Altune_obs.Bench_diff
module Trace = Altune_obs.Trace
module Metrics = Altune_obs.Metrics
module Manifest = Altune_obs.Manifest
module Summary = Altune_obs.Summary
module Pool = Altune_exec.Pool
module Runs = Altune_experiments.Runs
module Scale = Altune_experiments.Scale
module Drivers = Altune_experiments.Drivers

(* --- JSON -------------------------------------------------------------- *)

let rec json_eq a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y -> Float.equal x y
  | Json.String x, Json.String y -> String.equal x y
  | Json.List xs, Json.List ys ->
      List.length xs = List.length ys && List.for_all2 json_eq xs ys
  | Json.Obj xs, Json.Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_eq v1 v2)
           xs ys
  | _ -> false

let roundtrip j =
  match Json.of_string (Json.to_string j) with
  | Ok j' -> j'
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 0.1;
      Json.Float 1e-9;
      Json.Float (-3.25);
      Json.Float 1.7976931348623157e308;
      Json.String "";
      Json.String "with \"quotes\", \\ and \n\t control \x01 chars";
      Json.List [ Json.Int 1; Json.String "two"; Json.Null ];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("b", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %s" (Json.to_string j))
        true
        (json_eq j (roundtrip j)))
    samples

let test_json_int_float_distinct () =
  (* Counters must round-trip as ints; durations as floats. *)
  Alcotest.(check bool) "int stays int" true
    (match Json.of_string "17" with Ok (Json.Int 17) -> true | _ -> false);
  Alcotest.(check bool) "float stays float" true
    (match Json.of_string "17.0" with
    | Ok (Json.Float f) -> Float.equal f 17.0
    | _ -> false);
  Alcotest.(check bool) "int renders bare" true
    (String.equal (Json.to_string (Json.Int 17)) "17");
  Alcotest.(check bool) "float renders with point" true
    (String.contains (Json.to_string (Json.Float 17.0)) '.')

let test_json_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" s)
    bad

(* --- Span trees across job counts -------------------------------------- *)

(* Canonical form of a trace: the span tree with children ordered by a
   stable key (name + index attribute), ignoring ids, timings and
   domains.  Two runs of the same traced program must produce the same
   canonical tree regardless of job count. *)
let canonical_tree lines =
  let spans =
    List.filter_map
      (fun line ->
        match Json.of_string line with
        | Error e -> Alcotest.failf "bad trace line %S: %s" line e
        | Ok j -> (
            match Json.member "ev" j with
            | Some (Json.String "span") ->
                let id =
                  match Option.bind (Json.member "id" j) Json.to_int_opt with
                  | Some i -> i
                  | None -> Alcotest.failf "span without id: %s" line
                in
                let parent =
                  Option.bind (Json.member "parent" j) Json.to_int_opt
                in
                let name =
                  match
                    Option.bind (Json.member "name" j) Json.to_string_opt
                  with
                  | Some n -> n
                  | None -> Alcotest.failf "span without name: %s" line
                in
                let index =
                  Option.bind
                    (Option.bind (Json.member "attrs" j)
                       (Json.member "index"))
                    Json.to_int_opt
                in
                Some (id, (parent, name, index))
            | _ -> None))
      lines
  in
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun (id, (parent, name, index)) ->
      match parent with
      | Some p -> Hashtbl.add children p (id, name, index)
      | None -> roots := (id, name, index) :: !roots)
    spans;
  let rec render (id, name, index) =
    let kids =
      Hashtbl.find_all children id
      |> List.sort (fun (_, n1, i1) (_, n2, i2) ->
             match String.compare n1 n2 with
             | 0 -> compare (i1 : int option) i2
             | c -> c)
    in
    Printf.sprintf "%s%s(%s)" name
      (match index with Some i -> Printf.sprintf "[%d]" i | None -> "")
      (String.concat "," (List.map render kids))
  in
  !roots
  |> List.sort (fun (_, n1, i1) (_, n2, i2) ->
         match String.compare n1 n2 with
         | 0 -> compare (i1 : int option) i2
         | c -> c)
  |> List.map render |> String.concat ";"

let traced_workload ~jobs () =
  Pool.with_pool ~jobs (fun p ->
      Trace.with_span ~name:"root" (fun () ->
          Trace.with_span ~name:"setup" ~phase:"dataset" (fun () -> ());
          ignore
            (Pool.mapi p
               (fun i x ->
                 Trace.with_span ~name:"work" ~phase:"profiling"
                   ~attrs:[ ("index", Trace.Int i) ]
                   (fun () -> x * x))
               (List.init 8 (fun i -> i)))))

let test_span_tree_stable_across_jobs () =
  let tree_at jobs =
    let (), lines = Trace.with_memory (traced_workload ~jobs) in
    canonical_tree lines
  in
  let t1 = tree_at 1 and t4 = tree_at 4 in
  Alcotest.(check string) "same span tree at jobs=1 and jobs=4" t1 t4;
  (* And the tree really has the expected logical shape: every pool task
     is a child of [root] even when it ran on another domain. *)
  Alcotest.(check bool) "tasks parented under root" true
    (let expected_task i =
       Printf.sprintf "pool.task[%d](work[%d]())" i i
     in
     String.equal t1
       (Printf.sprintf "root(%s,setup())"
          (String.concat "," (List.init 8 expected_task))))

let test_span_error_flag () =
  let (), lines =
    Trace.with_memory (fun () ->
        try
          Trace.with_span ~name:"boom" (fun () -> failwith "x")
        with Failure _ -> ())
  in
  let errs =
    List.filter
      (fun l ->
        match Json.of_string l with
        | Ok j -> (
            match
              Option.bind (Json.member "err" j) Json.to_bool_opt
            with
            | Some b -> b
            | None -> false)
        | Error _ -> false)
      lines
  in
  Alcotest.(check int) "one err span" 1 (List.length errs)

let test_add_attrs () =
  let (), lines =
    Trace.with_memory (fun () ->
        Trace.with_span ~name:"outer" (fun () ->
            Trace.add_attrs [ ("late", Trace.Int 9) ]))
  in
  let found =
    List.exists
      (fun l ->
        match Json.of_string l with
        | Ok j ->
            Option.bind
              (Option.bind (Json.member "attrs" j) (Json.member "late"))
              Json.to_int_opt
            = Some 9
        | Error _ -> false)
      lines
  in
  Alcotest.(check bool) "late attr recorded" true found

(* --- Metrics ------------------------------------------------------------ *)

let test_histogram_edges () =
  Metrics.reset ();
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 5.0 |] "t.hist" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 5.0; 7.0 ];
  Alcotest.(check int) "count" 6 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 17.0 (Metrics.histogram_sum h);
  (* A value lands in the first bucket with v <= edge; 7.0 overflows. *)
  Alcotest.(check (list (pair (float 0.0) int)))
    "bucket counts"
    [ (1.0, 2); (2.0, 2); (5.0, 1); (infinity, 1) ]
    (Metrics.bucket_counts h)

let test_histogram_bad_buckets () =
  Metrics.reset ();
  (match Metrics.histogram ~buckets:[||] "t.empty" with
  | _ -> Alcotest.fail "empty buckets accepted"
  | exception Invalid_argument _ -> ());
  match Metrics.histogram ~buckets:[| 1.0; 1.0 |] "t.flat" with
  | _ -> Alcotest.fail "non-increasing buckets accepted"
  | exception Invalid_argument _ -> ()

let test_registry_identity_and_kinds () =
  Metrics.reset ();
  let c1 = Metrics.counter "t.shared" in
  let c2 = Metrics.counter "t.shared" in
  Metrics.incr c1;
  Metrics.incr c2;
  Alcotest.(check int) "same instrument" 2 (Metrics.counter_value c1);
  (match Metrics.gauge "t.shared" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  let _h = Metrics.histogram ~buckets:[| 1.0 |] "t.h" in
  match Metrics.histogram ~buckets:[| 2.0 |] "t.h" with
  | _ -> Alcotest.fail "bucket mismatch accepted"
  | exception Invalid_argument _ -> ()

let test_counter_contention () =
  Metrics.reset ();
  let c = Metrics.counter "t.contended" in
  let h = Metrics.histogram ~buckets:[| 0.5; 1.5 |] "t.contended.h" in
  let per_task = 10_000 in
  Pool.with_pool ~jobs:4 (fun p ->
      ignore
        (Pool.map p
           (fun _ ->
             for _ = 1 to per_task do
               Metrics.incr c;
               Metrics.observe h 1.0
             done)
           (List.init 8 (fun i -> i))));
  Alcotest.(check int) "no lost increments" (8 * per_task)
    (Metrics.counter_value c);
  Alcotest.(check int) "no lost observations" (8 * per_task)
    (Metrics.histogram_count h);
  Alcotest.(check (float 1e-6))
    "atomic float sum" (float_of_int (8 * per_task))
    (Metrics.histogram_sum h)

(* --- Manifest ----------------------------------------------------------- *)

let test_manifest_roundtrip () =
  let m = Manifest.capture ~scale:"smoke" ~jobs:2 ~seed:42 () in
  let line = Json.to_string (Manifest.to_json m) in
  match Json.of_string line with
  | Error e -> Alcotest.failf "manifest reparse: %s" e
  | Ok j -> (
      match Manifest.of_json j with
      | Error e -> Alcotest.failf "manifest of_json: %s" e
      | Ok m' ->
          Alcotest.(check bool) "round-trips" true (m = m');
          Alcotest.(check string) "scale kept" "smoke" m'.Manifest.scale;
          Alcotest.(check int) "jobs kept" 2 m'.Manifest.jobs;
          Alcotest.(check int) "seed kept" 42 m'.Manifest.seed;
          Alcotest.(check bool) "cores probed" true (m'.Manifest.cores >= 1))

(* --- Summary ------------------------------------------------------------ *)

let span ~id ?parent ~name ?phase ~start ~dur () =
  Json.to_string
    (Json.Obj
       ([ ("ev", Json.String "span"); ("id", Json.Int id) ]
       @ (match parent with
         | Some p -> [ ("parent", Json.Int p) ]
         | None -> [])
       @ [ ("name", Json.String name) ]
       @ (match phase with
         | Some p -> [ ("phase", Json.String p) ]
         | None -> [])
       @ [
           ("domain", Json.Int 0);
           ("start", Json.Float start);
           ("dur", Json.Float dur);
         ]))

let test_summary_self_time () =
  (* root [0,10] with children profiling [1,4] and alc [5,7]:
     self(root) = 10 - 3 - 2 = 5, all attributed to "(other)". *)
  let lines =
    [
      Json.to_string
        (Manifest.to_json (Manifest.capture ~scale:"smoke" ~jobs:1 ()));
      span ~id:1 ~name:"root" ~start:0.0 ~dur:10.0 ();
      span ~id:2 ~parent:1 ~name:"p" ~phase:"profiling" ~start:1.0 ~dur:3.0
        ();
      span ~id:3 ~parent:1 ~name:"a" ~phase:"alc" ~start:5.0 ~dur:2.0 ();
    ]
  in
  match Summary.of_lines lines with
  | Error e -> Alcotest.failf "summary: %s" e
  | Ok s ->
      Alcotest.(check int) "span count" 3 s.Summary.span_count;
      Alcotest.(check (float 1e-9)) "wall" 10.0 s.Summary.wall_s;
      Alcotest.(check (float 1e-9)) "busy" 10.0 s.Summary.busy_s;
      let self phase =
        match
          List.find_opt
            (fun r -> String.equal r.Summary.phase phase)
            s.Summary.rows
        with
        | Some r -> r.Summary.self_s
        | None -> Alcotest.failf "missing phase %s" phase
      in
      Alcotest.(check (float 1e-9)) "(other) self" 5.0 (self "(other)");
      Alcotest.(check (float 1e-9)) "profiling self" 3.0 (self "profiling");
      Alcotest.(check (float 1e-9)) "alc self" 2.0 (self "alc");
      Alcotest.(check bool) "manifest recovered" true
        (match s.Summary.manifest with
        | Some m -> String.equal m.Manifest.scale "smoke"
        | None -> false);
      Alcotest.(check (list string)) "no violations at 55%" []
        (Summary.violations s ~max_share:55.0);
      Alcotest.(check int) "violation below 45%" 1
        (List.length (Summary.violations s ~max_share:45.0))

let test_summary_rejects_garbage () =
  (match Summary.of_lines [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty trace accepted");
  match Summary.of_lines [ "not json" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed line accepted"

(* --- Tracing must not change results ------------------------------------ *)

let test_output_identical_with_tracing () =
  let run () =
    Runs.clear_cache ();
    Drivers.table1 ~benchmarks:[ "hessian" ] ~scale:Scale.smoke ~seed:1 ()
  in
  let plain = run () in
  let traced, lines = Trace.with_memory run in
  Alcotest.(check string) "byte-identical table" plain traced;
  Alcotest.(check bool) "trace non-empty" true (List.length lines > 0);
  Runs.clear_cache ()

(* --- Bench-diff --------------------------------------------------------- *)

let record ?host ?cores ~section ~jobs seconds =
  {
    Bench_diff.section;
    scale = "smoke";
    jobs;
    seconds;
    host;
    cores;
    git_rev = None;
    rate = None;
    rate_unit = None;
  }

let test_bench_diff_regression () =
  let baseline =
    [
      record ~host:"vm" ~cores:1 ~section:"table1" ~jobs:2 10.0;
      record ~host:"vm" ~cores:1 ~section:"fig6" ~jobs:2 10.0;
    ]
  in
  let current =
    [
      (* 2x slowdown on table1, within bounds on fig6. *)
      record ~host:"vm" ~cores:1 ~section:"table1" ~jobs:2 20.0;
      record ~host:"vm" ~cores:1 ~section:"fig6" ~jobs:2 11.0;
    ]
  in
  let d = Bench_diff.diff ~baseline ~current in
  Alcotest.(check int) "two comparable sections" 2 (List.length d.deltas);
  (match Bench_diff.regressions ~max_regress:25.0 d with
  | [ r ] ->
      Alcotest.(check string) "regressed section" "table1" r.section;
      Alcotest.(check (float 1e-9)) "delta is +100%" 100.0 r.delta_pct
  | rs -> Alcotest.failf "expected one regression, got %d" (List.length rs));
  (* The threshold is strict: exactly +25% is not a regression. *)
  let d25 =
    Bench_diff.diff
      ~baseline:[ record ~host:"vm" ~cores:1 ~section:"t" ~jobs:1 8.0 ]
      ~current:[ record ~host:"vm" ~cores:1 ~section:"t" ~jobs:1 10.0 ]
  in
  Alcotest.(check int) "+25% passes at --max-regress 25" 0
    (List.length (Bench_diff.regressions ~max_regress:25.0 d25));
  let rendered = Bench_diff.render ~max_regress:25.0 d in
  Alcotest.(check bool) "render flags the regression" true
    (let n = String.length rendered in
     let rec go i =
       i + 10 <= n && (String.sub rendered i 10 = "REGRESSION" || go (i + 1))
     in
     go 0)

let test_bench_diff_skips_incompatible () =
  let baseline =
    [
      record ~host:"vm" ~cores:1 ~section:"table1" ~jobs:2 10.0;
      record ~section:"fig6" ~jobs:2 10.0 (* pre-manifest: no host *);
    ]
  in
  let current =
    [
      record ~host:"other-box" ~cores:8 ~section:"table1" ~jobs:2 99.0;
      record ~section:"fig6" ~jobs:2 99.0;
      record ~host:"vm" ~cores:1 ~section:"table1" ~jobs:4 99.0;
    ]
  in
  let d = Bench_diff.diff ~baseline ~current in
  (* Nothing shares (section, scale, jobs, host, cores): no deltas, so a
     wildly slower run on a different machine never false-fails. *)
  Alcotest.(check int) "no comparable pairs" 0 (List.length d.deltas);
  Alcotest.(check int) "skipped baseline" 1 d.skipped_baseline;
  Alcotest.(check int) "skipped current" 1 d.skipped_current;
  Alcotest.(check int) "unmatched current" 2 d.unmatched;
  Alcotest.(check int) "nothing regresses" 0
    (List.length (Bench_diff.regressions ~max_regress:25.0 d))

let test_bench_diff_parses_null_manifest () =
  let line =
    {|{"section": "table1", "scale": "quick", "jobs": 1, "seconds": 96.9, "manifest": null}|}
  in
  match Json.of_string line with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok j -> (
      match Bench_diff.record_of_json j with
      | Error e -> Alcotest.failf "record: %s" e
      | Ok r ->
          Alcotest.(check bool) "not comparable" true (r.host = None);
          Alcotest.(check (float 0.0)) "seconds kept" 96.9 r.seconds)

let test_bench_diff_last_record_wins () =
  let baseline = [ record ~host:"vm" ~cores:1 ~section:"t" ~jobs:1 10.0 ] in
  let current =
    [
      record ~host:"vm" ~cores:1 ~section:"t" ~jobs:1 50.0 (* stale *);
      record ~host:"vm" ~cores:1 ~section:"t" ~jobs:1 10.5 (* newest *);
    ]
  in
  let d = Bench_diff.diff ~baseline ~current in
  match d.deltas with
  | [ dl ] -> Alcotest.(check (float 1e-9)) "newest compared" 10.5 dl.current_s
  | ds -> Alcotest.failf "expected one delta, got %d" (List.length ds)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "int/float distinct" `Quick
            test_json_int_float_distinct;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span tree stable across jobs" `Quick
            test_span_tree_stable_across_jobs;
          Alcotest.test_case "error flag" `Quick test_span_error_flag;
          Alcotest.test_case "add_attrs" `Quick test_add_attrs;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
          Alcotest.test_case "bad buckets" `Quick test_histogram_bad_buckets;
          Alcotest.test_case "registry identity and kinds" `Quick
            test_registry_identity_and_kinds;
          Alcotest.test_case "counter contention" `Quick
            test_counter_contention;
        ] );
      ( "manifest",
        [ Alcotest.test_case "round-trip" `Quick test_manifest_roundtrip ] );
      ( "summary",
        [
          Alcotest.test_case "self-time attribution" `Quick
            test_summary_self_time;
          Alcotest.test_case "rejects garbage" `Quick
            test_summary_rejects_garbage;
        ] );
      ( "bench-diff",
        [
          Alcotest.test_case "detects 2x slowdown" `Quick
            test_bench_diff_regression;
          Alcotest.test_case "skips incompatible manifests" `Quick
            test_bench_diff_skips_incompatible;
          Alcotest.test_case "parses manifest:null records" `Quick
            test_bench_diff_parses_null_manifest;
          Alcotest.test_case "last record wins" `Quick
            test_bench_diff_last_record_wins;
        ] );
      ( "integration",
        [
          Alcotest.test_case "output identical with tracing" `Slow
            test_output_identical_with_tracing;
        ] );
    ]
