(* Tests for the exact Gaussian-process surrogate: regression quality,
   uncertainty behaviour, ALC scores, and interchangeability with the
   dynamic tree behind the Surrogate interface. *)

module Gp = Altune_gp.Gp
module Surrogate = Altune_core.Surrogate
module Rng = Altune_prng.Rng

let train_1d ?(n = 60) ?(noise = 0.05) ~seed f =
  let rng = Rng.create ~seed in
  let gp = Gp.create ~dim:1 () in
  for _ = 1 to n do
    let x = Rng.uniform rng in
    Gp.observe gp [| x |] (f x +. Rng.normal ~sigma:noise rng)
  done;
  gp

let test_fits_smooth_function () =
  let f x = sin (6.0 *. x) in
  let gp = train_1d ~seed:3 f in
  List.iter
    (fun x ->
      let p = Gp.predict gp [| x |] in
      if Float.abs (p.mean -. f x) > 0.15 then
        Alcotest.failf "poor fit at %.2f: %.3f vs %.3f" x p.mean (f x))
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

let test_uncertainty_grows_off_data () =
  let gp = Gp.create ~dim:1 () in
  let rng = Rng.create ~seed:5 in
  (* Observations only in [0, 0.3]. *)
  for _ = 1 to 40 do
    let x = 0.3 *. Rng.uniform rng in
    Gp.observe gp [| x |] (Rng.normal ~sigma:0.05 rng)
  done;
  let near = (Gp.predict gp [| 0.15 |]).variance in
  let far = (Gp.predict gp [| 3.0 |]).variance in
  Alcotest.(check bool)
    (Printf.sprintf "far variance larger (%.4f < %.4f)" near far)
    true (near < far)

let test_empty_model_predicts_prior () =
  let gp = Gp.create ~dim:2 () in
  let p = Gp.predict gp [| 0.0; 0.0 |] in
  Alcotest.(check (float 1e-9)) "prior mean" 0.0 p.mean;
  Alcotest.(check bool) "prior variance positive" true (p.variance > 0.0)

let test_interpolates_training_points_closely () =
  let gp = Gp.create ~params:{ Gp.default_params with
                               noise_variance = Some 1e-6 } ~dim:1 () in
  List.iter
    (fun (x, y) -> Gp.observe gp [| x |] y)
    [ (0.0, 1.0); (0.5, 2.0); (1.0, 0.5) ];
  List.iter
    (fun (x, y) ->
      let p = Gp.predict gp [| x |] in
      Alcotest.(check (float 0.02)) (Printf.sprintf "at %.1f" x) y p.mean)
    [ (0.0, 1.0); (0.5, 2.0); (1.0, 0.5) ]

let test_alc_prefers_unexplored () =
  let gp = Gp.create ~dim:1 () in
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 40 do
    let x = 0.4 *. Rng.uniform rng in
    Gp.observe gp [| x |] (Rng.normal ~sigma:0.05 rng)
  done;
  let refs = Array.init 50 (fun i -> [| float_of_int i /. 50.0 |]) in
  let scores =
    Gp.alc_scores gp ~candidates:[| [| 0.2 |]; [| 0.9 |] |] ~refs
  in
  Alcotest.(check bool)
    (Printf.sprintf "unexplored wins (%.5f < %.5f)" scores.(0) scores.(1))
    true
    (scores.(0) < scores.(1))

let test_alc_nonnegative_finite () =
  let gp = train_1d ~seed:9 (fun x -> x) in
  let refs = Array.init 30 (fun i -> [| float_of_int i /. 30.0 |]) in
  let candidates = Array.init 10 (fun i -> [| float_of_int i /. 10.0 |]) in
  Array.iter
    (fun s ->
      if s < 0.0 || not (Float.is_finite s) then
        Alcotest.failf "bad ALC score %g" s)
    (Gp.alc_scores gp ~candidates ~refs)

let test_max_points_guard () =
  let gp =
    Gp.create ~params:{ Gp.default_params with max_points = 10 } ~dim:1 ()
  in
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 50 do
    Gp.observe gp [| Rng.uniform rng |] 0.0
  done;
  Alcotest.(check int) "capped" 10 (Gp.n_observations gp)

let test_noise_hint_used () =
  (* With a large noise hint, the GP should not chase individual noisy
     points: predictions smooth out. *)
  let rng = Rng.create ~seed:13 in
  let make hint =
    let gp = Gp.create ?noise_hint:hint ~dim:1 () in
    let data_rng = Rng.copy rng in
    for _ = 1 to 30 do
      let x = Rng.uniform data_rng in
      Gp.observe gp [| x |] (Rng.normal ~sigma:1.0 data_rng)
    done;
    gp
  in
  let smooth = make (Some 5.0) in
  let sharp = make (Some 1e-6) in
  (* Smoother model has predictions closer to the global mean (0). *)
  let spread gp =
    let acc = ref 0.0 in
    for i = 0 to 20 do
      let p = Gp.predict gp [| float_of_int i /. 20.0 |] in
      acc := !acc +. Float.abs p.mean
    done;
    !acc
  in
  Alcotest.(check bool) "hint smooths" true (spread smooth < spread sharp)

let test_surrogate_interface () =
  (* Both models behind the same interface learn the same step function. *)
  let check_factory factory name =
    let rng = Rng.create ~seed:17 in
    let m = factory ~noise_hint:(Some 0.01) ~rng ~dim:1 in
    for _ = 1 to 150 do
      let x = Rng.uniform rng in
      let y = (if x < 0.5 then 1.0 else 3.0) +. Rng.normal ~sigma:0.1 rng in
      Surrogate.observe m [| x |] y
    done;
    let low = (Surrogate.predict m [| 0.2 |]).mean in
    let high = (Surrogate.predict m [| 0.8 |]).mean in
    if not (low < 1.7 && high > 2.3) then
      Alcotest.failf "%s failed to learn step: %.2f / %.2f" name low high
  in
  check_factory (Gp.factory ()) "gp";
  check_factory (Surrogate.dynatree ~particles:100 ()) "dynatree"

let test_learner_runs_with_gp () =
  (* The full active-learning loop with the GP surrogate. *)
  let module Learner = Altune_core.Learner in
  let module Dataset = Altune_core.Dataset in
  let problem =
    {
      Altune_core.Problem.name = "syn";
      dim = 1;
      space_size = 50.0;
      random_config = (fun rng -> [| Rng.int rng 50 |]);
      features = (fun c -> [| (float_of_int c.(0) -. 24.5) /. 14.4 |]);
      measure =
        (fun ~rng ~run_index c ->
          ignore run_index;
          let x = float_of_int c.(0) in
          Float.max 0.001
            (1.0 +. (0.002 *. (x -. 20.0) *. (x -. 20.0))
            +. Rng.normal ~sigma:0.02 rng));
      compile_seconds = (fun _ -> 0.01);
      prepare = ignore;
    }
  in
  let dataset =
    Dataset.generate problem ~rng:(Rng.create ~seed:19) ~n_configs:45
      ~test_fraction:0.3 ~n_obs:5
  in
  let settings =
    {
      Learner.scaled_settings with
      n_init = 3;
      n_obs_init = 5;
      n_candidates = 8;
      n_max = 40;
      eval_every = 10;
      ref_size = 20;
      model = Gp.factory ();
    }
  in
  let o = Learner.run problem dataset settings ~rng:(Rng.create ~seed:21) in
  Alcotest.(check bool) "finite rmse" true (Float.is_finite o.final_rmse);
  let first = (List.hd o.curve).rmse in
  Alcotest.(check bool)
    (Printf.sprintf "learns (%.4f -> %.4f)" first o.final_rmse)
    true
    (o.final_rmse <= first)

let prop_predictions_finite =
  QCheck.Test.make ~name:"gp predictions finite" ~count:25
    QCheck.(pair small_int (list_of_size (Gen.int_range 0 30)
      (pair (float_bound_exclusive 1.0) (float_range (-3.0) 3.0))))
    (fun (seed, data) ->
      let gp = Gp.create ~dim:1 () in
      List.iter (fun (x, y) -> Gp.observe gp [| x |] y) data;
      ignore seed;
      List.for_all
        (fun q ->
          let p = Gp.predict gp [| q |] in
          Float.is_finite p.mean && Float.is_finite p.variance
          && p.variance >= 0.0)
        [ 0.0; 0.5; 1.0 ])

let () =
  Alcotest.run "gp"
    [
      ( "regression",
        [
          Alcotest.test_case "fits smooth function" `Quick
            test_fits_smooth_function;
          Alcotest.test_case "uncertainty off data" `Quick
            test_uncertainty_grows_off_data;
          Alcotest.test_case "empty model" `Quick
            test_empty_model_predicts_prior;
          Alcotest.test_case "interpolates" `Quick
            test_interpolates_training_points_closely;
          Alcotest.test_case "noise hint" `Quick test_noise_hint_used;
          Alcotest.test_case "max points guard" `Quick test_max_points_guard;
        ] );
      ( "active learning",
        [
          Alcotest.test_case "alc prefers unexplored" `Quick
            test_alc_prefers_unexplored;
          Alcotest.test_case "alc sane" `Quick test_alc_nonnegative_finite;
          Alcotest.test_case "surrogate interface" `Quick
            test_surrogate_interface;
          Alcotest.test_case "learner runs with gp" `Slow
            test_learner_runs_with_gp;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_predictions_finite ]);
    ]
