(* The tuning service: wire-protocol codecs must round-trip (and turn
   malformed input into error replies rather than crashes), sessions
   must walk the queued -> live -> done -> closed state machine under
   the documented admission policy, the shared cross-session memo must
   account hits schedule-independently, and a fixed request script must
   produce a byte-identical response transcript at any jobs count. *)

module Protocol = Altune_serve.Protocol
module Server = Altune_serve.Server
module Json = Altune_obs.Json

let server ?(jobs = 1) ?(max_live = 8) ?(max_queue = 64) ?budget_cap
    ?checkpoint_dir ?snapshot_path ?flight ?ledger_path () =
  Server.create
    {
      Server.jobs;
      max_live;
      max_queue;
      budget_cap;
      checkpoint_dir;
      snapshot_path;
      snapshot_every = 10.0;
      flight;
      ledger_path;
    }

let open_params ?(scale = "smoke") ?(seed = 42) ?fault ?budget ?n_max
    ?checkpoint name bench =
  {
    Protocol.o_session = name;
    o_bench = bench;
    o_scale = scale;
    o_seed = seed;
    o_fault = fault;
    o_budget = budget;
    o_n_max = n_max;
    o_checkpoint = checkpoint;
  }

(* Short sessions: smoke scale has n_init = 4, so n_max = 8 finishes
   after four adaptive iterations — enough to exercise every phase
   without making the suite slow. *)
let open_req ?scale ?seed ?fault ?budget ?checkpoint ?(n_max = Some 8) name
    bench =
  Protocol.Open (open_params ?scale ?seed ?fault ?budget ?checkpoint ?n_max
     name bench)

let ok = function
  | Ok reply -> reply
  | Error e -> Alcotest.failf "request failed: %s" e

let err = function
  | Ok _ -> Alcotest.fail "request unexpectedly succeeded"
  | Error e -> e

let view = function
  | Protocol.R_session v -> v
  | _ -> Alcotest.fail "expected a session reply"

let state_label = function
  | Protocol.Queued -> "queued"
  | Protocol.Live -> "live"
  | Protocol.Done -> "done"
  | Protocol.Closed -> "closed"

let check_state what expected v =
  Alcotest.(check string) what (state_label expected)
    (state_label v.Protocol.v_state)

(* --- Codec round-trips ------------------------------------------------- *)

let sample_requests =
  [
    open_req "alpha" "hessian";
    Protocol.Open
      (open_params ~scale:"paper" ~seed:7 ~fault:"rate=0.1" ~budget:250.0
         ~n_max:12 ~checkpoint:"/tmp/alpha.ck.json" "beta" "lu");
    Protocol.Step { session = "alpha"; iterations = 3 };
    Protocol.Tick { iterations = 2 };
    Protocol.Status { session = "alpha" };
    Protocol.Checkpoint { session = "alpha"; path = Some "/tmp/a.json" };
    Protocol.Checkpoint { session = "alpha"; path = None };
    Protocol.Close { session = "beta" };
    Protocol.Stats;
    Protocol.Stats_full;
    Protocol.Prom;
    Protocol.Shutdown;
  ]

let test_request_roundtrip () =
  List.iteri
    (fun i req ->
      List.iter
        (fun id ->
          let line = Protocol.request_to_line ?id req in
          match Protocol.request_of_line line with
          | Error (_, e) -> Alcotest.failf "request %d failed to parse: %s" i e
          | Ok (id', req') ->
              Alcotest.(check (option int))
                (Printf.sprintf "request %d id" i)
                id id';
              Alcotest.(check string)
                (Printf.sprintf "request %d re-encodes identically" i)
                line
                (Protocol.request_to_line ?id:id' req'))
        [ None; Some i ])
    sample_requests

let sample_views =
  [
    {
      Protocol.v_session = "alpha";
      v_state = Protocol.Live;
      v_position = None;
      v_iteration = 10;
      v_examples = 10;
      v_observations = 46;
      v_cost_s = 264.13644667420232;
      v_rmse = Some 12.532804083947969;
    };
    {
      Protocol.v_session = "beta";
      v_state = Protocol.Queued;
      v_position = Some 2;
      v_iteration = 0;
      v_examples = 0;
      v_observations = 0;
      v_cost_s = 0.0;
      v_rmse = None;
    };
  ]

let sample_responses =
  let memo =
    {
      Protocol.m_lookups = 184;
      m_entries = 10;
      m_hits = 174;
      m_shared_keys = 10;
      m_cross_hits = 92;
    }
  in
  [
    { Protocol.r_id = Some 1; r_result = Ok (Protocol.R_session (List.hd sample_views)) };
    { Protocol.r_id = None; r_result = Ok (Protocol.R_tick sample_views) };
    {
      Protocol.r_id = Some 2;
      r_result =
        Ok
          (Protocol.R_stats
             {
               Protocol.s_opened = 5;
               s_live = 2;
               s_queued = 1;
               s_done = 1;
               s_closed = 1;
               s_max_live = 8;
               s_max_queue = 64;
               s_memo = memo;
             });
    };
    {
      Protocol.r_id = Some 7;
      r_result =
        Ok
          (Protocol.R_stats_full
             (Json.Obj
                [
                  ("uptime_s", Json.Float 1.5);
                  ("server", Json.Obj [ ("live", Json.Int 2) ]);
                ]));
    };
    {
      Protocol.r_id = Some 8;
      r_result =
        Ok
          (Protocol.R_prom
             "# TYPE serve_requests counter\nserve_requests 12\n");
    };
    {
      Protocol.r_id = Some 3;
      r_result =
        Ok
          (Protocol.R_checkpoint
             { session = "alpha"; path = "/tmp/a.json"; iteration = 10 });
    };
    {
      Protocol.r_id = None;
      r_result = Ok (Protocol.R_close { session = "beta"; admitted = [ "gamma" ] });
    };
    {
      Protocol.r_id = Some 4;
      r_result =
        Ok
          (Protocol.R_shutdown
             { checkpointed = [ ("alpha", "/tmp/a.json"); ("beta", "/tmp/b.json") ] });
    };
    { Protocol.r_id = Some 9; r_result = Error "no such session: gamma" };
  ]

let test_response_roundtrip () =
  List.iteri
    (fun i resp ->
      let line = Protocol.response_to_line resp in
      match Protocol.response_of_line line with
      | Error e -> Alcotest.failf "response %d failed to parse: %s" i e
      | Ok resp' ->
          Alcotest.(check string)
            (Printf.sprintf "response %d re-encodes identically" i)
            line
            (Protocol.response_to_line resp'))
    sample_responses

let test_malformed_lines () =
  let cases =
    [
      ("not json at all", "{oops");
      ("not an object", "[1, 2]");
      ("missing req", "{\"id\": 3}");
      ("unknown req", "{\"id\": 7, \"req\": \"nonsense\"}");
      ("open without session", "{\"req\": \"open\", \"bench\": \"lu\"}");
      ("step without session", "{\"req\": \"step\"}");
    ]
  in
  List.iter
    (fun (what, line) ->
      match Protocol.request_of_line line with
      | Ok _ -> Alcotest.failf "%s: parsed successfully" what
      | Error _ -> ())
    cases;
  (* A parse error still echoes the request id so the client can match
     the error reply to its request. *)
  (match Protocol.request_of_line "{\"id\": 7, \"req\": \"nonsense\"}" with
  | Ok _ -> Alcotest.fail "unknown req parsed"
  | Error (id, _) -> Alcotest.(check (option int)) "error echoes id" (Some 7) id);
  (* And the server turns it into an error response line, not a crash. *)
  let s = server () in
  let reply = Server.handle_line s "{\"id\": 7, \"req\": \"nonsense\"}" in
  match Protocol.response_of_line reply with
  | Error e -> Alcotest.failf "error reply unparseable: %s" e
  | Ok r ->
      Alcotest.(check (option int)) "reply echoes id" (Some 7) r.Protocol.r_id;
      Alcotest.(check bool) "reply is an error" true
        (Result.is_error r.Protocol.r_result)

(* --- Session lifecycle ------------------------------------------------- *)

let test_lifecycle () =
  let s = server () in
  let v = view (ok (Server.handle s (open_req "a" "hessian"))) in
  check_state "admitted live" Protocol.Live v;
  Alcotest.(check int) "starts unstepped" 0 v.Protocol.v_iteration;
  let v =
    view (ok (Server.handle s (Protocol.Step { session = "a"; iterations = 2 })))
  in
  check_state "still live mid-run" Protocol.Live v;
  (* smoke n_init = 4 seeds the model, then 2 adaptive iterations. *)
  Alcotest.(check int) "stepped to n_init + 2" 6 v.Protocol.v_iteration;
  Alcotest.(check bool) "profiled some configs" true (v.Protocol.v_examples > 0);
  Alcotest.(check bool) "accumulated cost" true (v.Protocol.v_cost_s > 0.0);
  let v =
    view
      (ok (Server.handle s (Protocol.Step { session = "a"; iterations = 100 })))
  in
  check_state "finished at its cap" Protocol.Done v;
  Alcotest.(check int) "ran to n_max" 8 v.Protocol.v_iteration;
  Alcotest.(check bool) "final rmse reported" true
    (v.Protocol.v_rmse <> None);
  (* A finished session cannot be stepped further, but stays queryable. *)
  ignore
    (err (Server.handle s (Protocol.Step { session = "a"; iterations = 1 })));
  let v' = view (ok (Server.handle s (Protocol.Status { session = "a" }))) in
  Alcotest.(check int) "done session holds its final iteration"
    v.Protocol.v_iteration v'.Protocol.v_iteration;
  (match ok (Server.handle s (Protocol.Close { session = "a" })) with
  | Protocol.R_close { session; admitted } ->
      Alcotest.(check string) "closed a" "a" session;
      Alcotest.(check (list string)) "nothing queued to promote" [] admitted
  | _ -> Alcotest.fail "expected a close reply");
  check_state "closed" Protocol.Closed
    (view (ok (Server.handle s (Protocol.Status { session = "a" }))));
  ignore (err (Server.handle s (Protocol.Step { session = "a"; iterations = 1 })));
  ignore (err (Server.handle s (Protocol.Status { session = "nope" })));
  let stats = Server.stats s in
  Alcotest.(check int) "one session opened" 1 stats.Protocol.s_opened;
  Alcotest.(check int) "one session closed" 1 stats.Protocol.s_closed

(* --- Admission control -------------------------------------------------- *)

let test_admission () =
  let s = server ~max_live:1 ~max_queue:1 ~budget_cap:100_000.0 () in
  (* The cap makes budgets mandatory. *)
  ignore (err (Server.handle s (open_req "free" "hessian")));
  ignore
    (err (Server.handle s (open_req ~budget:200_000.0 "greedy" "hessian")));
  let v =
    view (ok (Server.handle s (open_req ~budget:50_000.0 "a" "hessian")))
  in
  check_state "first session live" Protocol.Live v;
  ignore (err (Server.handle s (open_req ~budget:50_000.0 "a" "lu")));
  ignore (err (Server.handle s (open_req ~budget:50_000.0 "b" "no-such")));
  ignore
    (err
       (Server.handle s
          (open_req ~budget:50_000.0 ~scale:"no-such" "b" "lu")));
  ignore
    (err
       (Server.handle s
          (open_req ~budget:50_000.0 ~fault:"bogus-spec" "b" "lu")));
  let v = view (ok (Server.handle s (open_req ~budget:50_000.0 "b" "lu"))) in
  check_state "second session queued" Protocol.Queued v;
  Alcotest.(check (option int)) "at queue head" (Some 0) v.Protocol.v_position;
  (* Queue is full now. *)
  ignore (err (Server.handle s (open_req ~budget:50_000.0 "c" "lu")));
  (* A queued session cannot step... *)
  ignore (err (Server.handle s (Protocol.Step { session = "b"; iterations = 1 })));
  (* ...until closing the live one promotes it, deterministically inside
     the close request itself. *)
  (match ok (Server.handle s (Protocol.Close { session = "a" })) with
  | Protocol.R_close { admitted; _ } ->
      Alcotest.(check (list string)) "close promoted the queue head" [ "b" ]
        admitted
  | _ -> Alcotest.fail "expected a close reply");
  check_state "promoted session live" Protocol.Live
    (view (ok (Server.handle s (Protocol.Status { session = "b" }))));
  let v =
    view (ok (Server.handle s (Protocol.Step { session = "b"; iterations = 1 })))
  in
  Alcotest.(check int) "promoted session steps" 5 v.Protocol.v_iteration

(* --- Shared-memo accounting --------------------------------------------- *)

let test_memo_accounting () =
  let s = server () in
  ignore (ok (Server.handle s (open_req "a" "hessian")));
  ignore (ok (Server.handle s (open_req "b" "hessian")));
  ignore (ok (Server.handle s (Protocol.Tick { iterations = 2 })));
  let m = Server.memo_stats s in
  Alcotest.(check bool) "lookups happened" true (m.Protocol.m_lookups > 0);
  Alcotest.(check int) "hits = lookups - entries"
    (m.Protocol.m_lookups - m.Protocol.m_entries)
    m.Protocol.m_hits;
  (* Identical (bench, seed) sessions demand identical configurations:
     every key is shared, and every lookup by the second-admitted
     session is a cross-session hit. *)
  Alcotest.(check int) "twin sessions share every key" m.Protocol.m_entries
    m.Protocol.m_shared_keys;
  Alcotest.(check int) "twin lookups split evenly"
    (m.Protocol.m_lookups / 2)
    m.Protocol.m_cross_hits;
  (* A third tenant on a different kernel shares nothing. *)
  ignore (ok (Server.handle s (open_req "c" "lu")));
  ignore
    (ok (Server.handle s (Protocol.Step { session = "c"; iterations = 2 })));
  let m' = Server.memo_stats s in
  Alcotest.(check int) "disjoint kernel adds no shared keys"
    m.Protocol.m_shared_keys m'.Protocol.m_shared_keys;
  Alcotest.(check int) "disjoint kernel adds no cross hits"
    m.Protocol.m_cross_hits m'.Protocol.m_cross_hits;
  Alcotest.(check bool) "disjoint kernel adds entries" true
    (m'.Protocol.m_entries > m.Protocol.m_entries)

(* --- Graceful shutdown --------------------------------------------------- *)

let test_shutdown () =
  let dir = Filename.temp_file "altune-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let s = server ~checkpoint_dir:dir () in
  (* Stock settings (no n_max override), so the checkpoint is resumable
     by `altune resume`. *)
  ignore (ok (Server.handle s (open_req ~n_max:None "a" "hessian")));
  ignore (ok (Server.handle s (Protocol.Step { session = "a"; iterations = 2 })));
  (* A second session with no progress yet: nothing to checkpoint. *)
  ignore (ok (Server.handle s (open_req ~n_max:None "b" "lu")));
  (match ok (Server.handle s Protocol.Shutdown) with
  | Protocol.R_shutdown { checkpointed } ->
      Alcotest.(check (list string)) "stepped session checkpointed" [ "a" ]
        (List.map fst checkpointed);
      List.iter
        (fun (_, path) ->
          Alcotest.(check bool) "checkpoint file exists" true
            (Sys.file_exists path);
          let ic = open_in path in
          let n = in_channel_length ic in
          let body = really_input_string ic n in
          close_in ic;
          Alcotest.(check bool) "checkpoint parses as JSON" true
            (Result.is_ok (Json.of_string body)))
        checkpointed
  | _ -> Alcotest.fail "expected a shutdown reply");
  Alcotest.(check bool) "server refuses new work" true
    (Result.is_error (Server.handle s (open_req "c" "hessian")));
  (* Stats stay readable after shutdown, and shutdown is idempotent. *)
  ignore (ok (Server.handle s Protocol.Stats));
  Alcotest.(check (list string)) "second shutdown is a no-op" []
    (List.map fst (Server.graceful_stop s));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let test_checkpoint_rules () =
  let s = server () in
  let path = Filename.temp_file "altune-serve" ".ck.json" in
  (* Budget/n_max overrides change the learner stream, so their
     checkpoints could not be resumed faithfully by `altune resume`:
     refused. *)
  ignore (ok (Server.handle s (open_req "capped" "hessian")));
  ignore
    (ok (Server.handle s (Protocol.Step { session = "capped"; iterations = 1 })));
  ignore
    (err
       (Server.handle s
          (Protocol.Checkpoint { session = "capped"; path = Some path })));
  (* A stock session checkpoints fine once it has progress... *)
  ignore (ok (Server.handle s (open_req ~n_max:None "stock" "hessian")));
  ignore
    (err
       (Server.handle s
          (Protocol.Checkpoint { session = "stock"; path = Some path })));
  ignore
    (ok (Server.handle s (Protocol.Step { session = "stock"; iterations = 2 })));
  (match
     ok
       (Server.handle s
          (Protocol.Checkpoint { session = "stock"; path = Some path }))
   with
  | Protocol.R_checkpoint { session; path = p; iteration } ->
      Alcotest.(check string) "checkpointed the right session" "stock" session;
      Alcotest.(check string) "at the requested path" path p;
      Alcotest.(check int) "after n_init + 2 iterations" 6 iteration;
      Alcotest.(check bool) "file written" true (Sys.file_exists p)
  | _ -> Alcotest.fail "expected a checkpoint reply");
  (* ...and without any path configured there is nowhere to write. *)
  ignore
    (err
       (Server.handle s (Protocol.Checkpoint { session = "stock"; path = None })));
  Sys.remove path

(* --- Failure ledger ------------------------------------------------------ *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

(* Any error reply appends a record to the failure ledger, carrying the
   offending request line and a dump of the flight recorder's retained
   trace lines. *)
let test_failure_ledger () =
  let ledger = Filename.temp_file "altune-ledger" ".jsonl" in
  Sys.remove ledger;
  let flight = Altune_obs.Flight.create ~capacity:8 () in
  Altune_obs.Flight.install flight;
  Fun.protect ~finally:Altune_obs.Trace.uninstall (fun () ->
      let s = server ~ledger_path:ledger ~flight () in
      ignore (Server.handle_line s "{oops");
      ignore
        (Server.handle_line s "{\"req\": \"step\", \"session\": \"ghost\"}");
      let records =
        List.map
          (fun line ->
            match Json.of_string line with
            | Ok j -> j
            | Error e -> Alcotest.failf "ledger line unparseable: %s" e)
          (read_lines ledger)
      in
      Alcotest.(check int) "one ledger record per error" 2
        (List.length records);
      List.iter
        (fun r ->
          Alcotest.(check (option string))
            "tagged as ledger record" (Some "ledger")
            (Option.bind (Json.member "ev" r) Json.to_string_opt);
          Alcotest.(check bool) "carries the error" true
            (Json.member "error" r <> None);
          Alcotest.(check bool) "carries the request line" true
            (Json.member "request" r <> None);
          match Json.member "flight" r with
          | Some (Json.List _) -> ()
          | _ -> Alcotest.fail "flight dump missing from ledger record")
        records;
      (* An OK request appends nothing. *)
      ignore (Server.handle_line s "{\"req\": \"stats\"}");
      Alcotest.(check int) "ok requests leave the ledger alone" 2
        (List.length (read_lines ledger)));
  Sys.remove ledger

(* --- Transcript determinism ---------------------------------------------- *)

(* A fixed scripted client: overlapping tenants on two kernels, a queued
   session promoted mid-script, interleaved status/stats probes, a
   malformed line, and a final shutdown.  The response byte stream must
   not depend on the domain count. *)
let script =
  [
    "{\"id\": 1, \"req\": \"open\", \"session\": \"a\", \"bench\": \
     \"hessian\", \"n_max\": 8}";
    "{\"id\": 2, \"req\": \"open\", \"session\": \"b\", \"bench\": \
     \"hessian\", \"n_max\": 8}";
    "{\"id\": 3, \"req\": \"open\", \"session\": \"c\", \"bench\": \"lu\", \
     \"n_max\": 8}";
    "{\"id\": 4, \"req\": \"open\", \"session\": \"d\", \"bench\": \"lu\", \
     \"n_max\": 8}";
    "{\"id\": 5, \"req\": \"tick\", \"iterations\": 3}";
    "{\"id\": 6, \"req\": \"status\", \"session\": \"d\"}";
    "{\"id\": 7, \"req\": \"nonsense\"}";
    "{\"id\": 8, \"req\": \"tick\", \"iterations\": 3}";
    "{\"id\": 9, \"req\": \"close\", \"session\": \"a\"}";
    "{\"id\": 10, \"req\": \"tick\", \"iterations\": 9}";
    "{\"id\": 11, \"req\": \"stats\"}";
    "{\"id\": 12, \"req\": \"shutdown\"}";
  ]

let transcript ~jobs =
  (* max_live = 3 forces session d through the queue. *)
  let s = server ~jobs ~max_live:3 () in
  String.concat "\n" (List.map (Server.handle_line s) script)

let test_transcript_across_jobs () =
  let t1 = transcript ~jobs:1 in
  let t4 = transcript ~jobs:4 in
  Alcotest.(check string) "transcripts byte-identical at jobs 1 and 4" t1 t4;
  (* The script must actually exercise the interesting machinery. *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "script saw an error reply" true
    (contains t1 "\"ok\":false")

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "malformed lines become error replies" `Quick
            test_malformed_lines;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "admission control" `Quick test_admission;
          Alcotest.test_case "checkpoint rules" `Quick test_checkpoint_rules;
          Alcotest.test_case "graceful shutdown" `Quick test_shutdown;
        ] );
      ( "memo",
        [
          Alcotest.test_case "cross-session accounting" `Quick
            test_memo_accounting;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "errors land in the failure ledger" `Quick
            test_failure_ledger;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "transcript identical at jobs=1 and jobs=4" `Slow
            test_transcript_across_jobs;
        ] );
    ]
