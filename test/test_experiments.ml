(* Integration tests: every experiment driver runs end-to-end at a tiny
   scale and produces the expected report structure. *)

module Drivers = Altune_experiments.Drivers
module Scale = Altune_experiments.Scale
module Runs = Altune_experiments.Runs
module Adapter = Altune_experiments.Adapter
module Spapt = Altune_spapt.Spapt
module Learner = Altune_core.Learner
module Rng = Altune_prng.Rng

let tiny : Scale.t =
  {
    label = "tiny";
    n_configs = 250;
    test_fraction = 0.25;
    n_obs = 10;
    reps = 1;
    adaptive =
      {
        Learner.scaled_settings with
        n_init = 4;
        n_obs_init = 10;
        n_candidates = 15;
        n_max = 50;
        eval_every = 10;
        ref_size = 40;
        model = Altune_core.Surrogate.dynatree ~particles:25 ();
      };
    table2_configs = 30;
    fig1_max_grid = 6;
  }

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else go (i + 1)
  in
  go 0

let test_adapter () =
  let b = Spapt.create "lu" in
  let p = Adapter.problem_of b in
  Alcotest.(check string) "name" "lu" p.name;
  Alcotest.(check int) "dim" (Spapt.dim b) p.dim;
  let rng = Rng.create ~seed:1 in
  let c = p.random_config rng in
  Alcotest.(check bool) "valid configs" true (Spapt.config_valid b c);
  Alcotest.(check int) "feature dim" p.dim (Array.length (p.features c));
  let y = p.measure ~rng ~run_index:1 c in
  Alcotest.(check bool) "measure positive" true (y > 0.0)

let test_adapter_verify_gate () =
  (* With the gate on, a measurement first audits the configuration's
     transformation recipe; a sound recipe measures normally. *)
  let b = Spapt.create "mm" in
  let p = Adapter.problem_of ~verify:true b in
  let rng = Rng.create ~seed:2 in
  let c = [| 1; 0; 0; 0; 1; 2 |] in
  let y1 = p.measure ~rng ~run_index:1 c in
  Alcotest.(check bool) "verified measure positive" true (y1 > 0.0);
  (* Second measurement of the same config reuses the cached approval. *)
  let y2 = p.measure ~rng ~run_index:2 c in
  Alcotest.(check bool) "repeat measure positive" true (y2 > 0.0)

let test_runs_cached () =
  Runs.clear_cache ();
  let b = Spapt.create "hessian" in
  let t0 = Unix.gettimeofday () in
  let c1 = Runs.curves_for b tiny ~seed:1 in
  let cold = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let c2 = Runs.curves_for b tiny ~seed:1 in
  let warm = Unix.gettimeofday () -. t1 in
  Alcotest.(check bool) "identical result" true (c1 = c2);
  Alcotest.(check bool)
    (Printf.sprintf "cache faster (%.3fs -> %.3fs)" cold warm)
    true
    (warm < cold /. 10.0)

let test_table1 () =
  let s = Drivers.table1 ~benchmarks:[ "hessian"; "lu" ] ~scale:tiny ~seed:1 () in
  Alcotest.(check bool) "has benchmarks" true
    (contains s "hessian" && contains s "lu");
  Alcotest.(check bool) "has geomean" true (contains s "geometric mean");
  Alcotest.(check bool) "has speed-up column" true (contains s "speed-up")

let test_table2 () =
  let s = Drivers.table2 ~benchmarks:[ "lu" ] ~scale:tiny ~seed:1 () in
  Alcotest.(check bool) "has benchmark" true (contains s "lu");
  Alcotest.(check bool) "has CI columns" true (contains s "35s CI/m mean")

let test_fig1 () =
  let s = Drivers.fig1 ~scale:tiny ~seed:1 () in
  Alcotest.(check bool) "three panels" true
    (contains s "(a)" && contains s "(b)" && contains s "(c)");
  Alcotest.(check bool) "executions summary" true (contains s "Executions")

let test_fig2 () =
  let s = Drivers.fig2 ~scale:tiny ~seed:1 () in
  Alcotest.(check bool) "adi sweep" true (contains s "adi");
  Alcotest.(check bool) "axis" true (contains s "unroll factor")

let test_fig5 () =
  let s = Drivers.fig5 ~benchmarks:[ "hessian"; "lu" ] ~scale:tiny ~seed:1 () in
  Alcotest.(check bool) "bars" true (contains s "#");
  Alcotest.(check bool) "geomean bar" true (contains s "geo-mean")

let test_fig6 () =
  let s = Drivers.fig6 ~benchmarks:[ "lu" ] ~scale:tiny ~seed:1 () in
  Alcotest.(check bool) "three series" true
    (contains s "all observations" && contains s "one observation"
    && contains s "variable observations")

let test_ablation () =
  let s = Drivers.ablation ~bench:"lu" ~scale:tiny ~seed:1 () in
  Alcotest.(check bool) "variants listed" true
    (contains s "alc (paper)" && contains s "mackay"
    && contains s "random")

let () =
  Alcotest.run "experiments"
    [
      ( "glue",
        [
          Alcotest.test_case "adapter" `Quick test_adapter;
          Alcotest.test_case "adapter verify gate" `Quick
            test_adapter_verify_gate;
          Alcotest.test_case "runs cached" `Slow test_runs_cached;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "table1" `Slow test_table1;
          Alcotest.test_case "table2" `Slow test_table2;
          Alcotest.test_case "fig1" `Slow test_fig1;
          Alcotest.test_case "fig2" `Quick test_fig2;
          Alcotest.test_case "fig5" `Slow test_fig5;
          Alcotest.test_case "fig6" `Slow test_fig6;
          Alcotest.test_case "ablation" `Slow test_ablation;
        ] );
    ]
