(* Tests for the plain-text rendering library. *)

module Report = Altune_report.Report

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else go (i + 1)
  in
  go 0

let test_table_basic () =
  let s =
    Report.Table.render ~headers:[ "name"; "value" ]
      ~rows:[ [ "alpha"; "1.5" ]; [ "beta"; "22.0" ] ]
  in
  Alcotest.(check bool) "has header" true (contains s "name");
  Alcotest.(check bool) "has rule" true (contains s "---");
  Alcotest.(check bool) "has rows" true
    (contains s "alpha" && contains s "22.0");
  (* Numeric column right-aligned: "1.5" should be padded on the left to
     the width of "22.0"/"value". *)
  Alcotest.(check bool) "right aligned" true (contains s "  1.5")

let test_table_ragged_rows () =
  let s =
    Report.Table.render ~headers:[ "a"; "b"; "c" ] ~rows:[ [ "x" ]; [] ]
  in
  Alcotest.(check bool) "renders without error" true (String.length s > 0)

let test_csv_escaping () =
  let s =
    Report.Csv.to_string ~header:[ "x"; "note" ]
      ~rows:[ [ "1"; "has, comma" ]; [ "2"; "has \"quote\"" ] ]
  in
  Alcotest.(check bool) "comma quoted" true (contains s "\"has, comma\"");
  Alcotest.(check bool) "quote doubled" true (contains s "\"\"quote\"\"")

let test_csv_write_roundtrip () =
  let path = Filename.temp_file "altune" ".csv" in
  Report.Csv.write ~path ~header:[ "a" ] ~rows:[ [ "1" ]; [ "2" ] ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string)) "contents" [ "a"; "1"; "2" ]
    (List.rev !lines)

let test_line_plot () =
  let s =
    Report.Plot.line ~title:"t" ~xlabel:"x" ~ylabel:"y"
      [
        ("s1", [ (0.0, 0.0); (1.0, 1.0) ]);
        ("s2", [ (0.0, 1.0); (1.0, 0.0) ]);
      ]
  in
  Alcotest.(check bool) "title" true (contains s "t");
  Alcotest.(check bool) "glyph s1" true (contains s "*");
  Alcotest.(check bool) "glyph s2" true (contains s "o");
  Alcotest.(check bool) "legend" true (contains s "s1" && contains s "s2");
  Alcotest.(check bool) "axis range" true (contains s "0 .. 1")

let test_line_plot_empty () =
  let s = Report.Plot.line ~title:"t" ~xlabel:"x" ~ylabel:"y" [ ("e", []) ] in
  Alcotest.(check bool) "no data marker" true (contains s "(no data)")

let test_line_plot_logx_filters () =
  let s =
    Report.Plot.line ~logx:true ~title:"t" ~xlabel:"x" ~ylabel:"y"
      [ ("s", [ (0.0, 1.0); (10.0, 2.0); (100.0, 3.0) ]) ]
  in
  (* The zero-x point must be dropped, not crash the log scale. *)
  Alcotest.(check bool) "renders" true (contains s "log x")

let test_bars () =
  let s = Report.Plot.bars ~title:"speedups" [ ("a", 2.0); ("b", 4.0) ] in
  Alcotest.(check bool) "labels" true (contains s "a" && contains s "b");
  Alcotest.(check bool) "bars drawn" true (contains s "####")

let test_heat () =
  let s =
    Report.Plot.heat ~title:"h" ~xlabel:"x" ~ylabel:"y" ~rows:4 ~cols:6
      (fun r c -> float_of_int (r * c))
  in
  Alcotest.(check bool) "max glyph" true (contains s "@");
  Alcotest.(check bool) "scale note" true (contains s "scale")

let test_formatting () =
  Alcotest.(check string) "f3 small" "0.123" (Report.f3 0.1234);
  Alcotest.(check string) "f3 integer" "42" (Report.f3 42.0);
  Alcotest.(check string) "f3 tiny" "1.2e-05" (Report.f3 1.2e-5);
  Alcotest.(check string) "sci" "3.78e+14" (Report.sci 3.78e14)

let prop_table_never_raises =
  QCheck.Test.make ~name:"table renders arbitrary cells" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 5)
      (list_of_size (Gen.int_range 0 5) string))
    (fun rows ->
      let s = Report.Table.render ~headers:[ "h1"; "h2" ] ~rows in
      String.length s >= 0)

(* --- SVG / HTML report primitives --------------------------------------- *)

module Svg = Altune_report.Svg
module Html = Altune_report.Html

let two_series =
  [
    ("adaptive", [ (1.0, 5.0); (10.0, 3.0); (100.0, 1.5) ]);
    ("fixed", [ (1.0, 6.0); (10.0, 4.0); (100.0, 2.5) ]);
  ]

let test_svg_line_chart () =
  let s = Svg.line_chart ~logx:true ~xlabel:"cost (s)" ~ylabel:"RMSE"
      two_series
  in
  Alcotest.(check bool) "polyline per series" true (contains s "polyline");
  Alcotest.(check bool) "legend for two series" true
    (contains s "class=\"legend\"");
  Alcotest.(check bool) "tooltip on markers" true (contains s "<title>");
  Alcotest.(check bool) "series classes" true
    (contains s "s0" && contains s "s1");
  Alcotest.(check string) "deterministic" s
    (Svg.line_chart ~logx:true ~xlabel:"cost (s)" ~ylabel:"RMSE" two_series);
  (* One series: no legend box (the title names it). *)
  let one = Svg.line_chart ~xlabel:"x" ~ylabel:"y" [ List.hd two_series ] in
  Alcotest.(check bool) "no legend for one series" false
    (contains one "class=\"legend\"");
  (* Non-finite points are dropped, not rendered as NaN coordinates. *)
  let dirty =
    Svg.line_chart ~xlabel:"x" ~ylabel:"y"
      [ ("a", [ (1.0, nan); (2.0, 3.0); (infinity, 1.0) ]) ]
  in
  Alcotest.(check bool) "no NaN in output" false (contains dirty "nan")

let test_svg_series_cap () =
  let many =
    List.init 8 (fun i ->
        (Printf.sprintf "series%d" i, [ (0.0, float_of_int i); (1.0, 1.0) ]))
  in
  let s = Svg.line_chart ~xlabel:"x" ~ylabel:"y" many in
  Alcotest.(check bool) "caps at the palette's six slots" false
    (contains s "class=\"line s6\"");
  Alcotest.(check bool) "omission is visible, not silent" true
    (contains s "+2 series omitted")

let test_svg_bar_chart () =
  let s =
    Svg.bar_chart ~xlabel:"split frequency"
      [ ("dim 0", 0.5); ("dim 1", 0.3); ("dim 2", 0.2) ]
  in
  Alcotest.(check bool) "bars" true (contains s "class=\"bar\"");
  Alcotest.(check bool) "value labels" true (contains s "0.5");
  Alcotest.(check bool) "tooltips" true (contains s "<title>dim 0: 0.5</title>")

(* Regression: non-finite data (an all-failed repetition under fault
   injection averages to nan, an empty curve yields infinities) must
   never leak literal NaN/inf tokens into SVG path data or labels. *)
let test_svg_no_nonfinite_tokens () =
  let tokens = [ "nan"; "NaN"; "inf"; "Infinity" ] in
  let assert_clean label s =
    List.iter
      (fun t ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: no %S token" label t)
          false (contains s t))
      tokens
  in
  assert_clean "line chart, mixed finiteness"
    (Svg.line_chart ~xlabel:"x" ~ylabel:"y"
       [
         ( "a",
           [ (nan, 1.0); (1.0, nan); (2.0, 3.0); (infinity, 1.0);
             (3.0, neg_infinity) ] );
         ("b", [ (nan, nan) ]);
       ]);
  assert_clean "line chart, nothing finite"
    (Svg.line_chart ~xlabel:"x" ~ylabel:"y"
       [ ("a", [ (nan, nan); (infinity, neg_infinity) ]) ]);
  assert_clean "line chart, logx with non-positive x"
    (Svg.line_chart ~logx:true ~xlabel:"x" ~ylabel:"y"
       [ ("a", [ (0.0, 1.0); (-1.0, 2.0); (10.0, 3.0) ]) ]);
  assert_clean "bar chart"
    (Svg.bar_chart ~xlabel:"v"
       [ ("ok", 1.0); ("bad", nan); ("worse", infinity); ("neg", -1.0) ]);
  assert_clean "bar chart, nothing finite"
    (Svg.bar_chart ~xlabel:"v" [ ("bad", nan); ("worse", neg_infinity) ])

let test_html_page () =
  let body =
    Html.section ~title:"A <section>" ~intro:"intro"
      (Html.figure ~caption:"cap"
         (Svg.line_chart ~xlabel:"x" ~ylabel:"y" two_series)
      ^ Html.details_table ~summary:"data" ~headers:[ "x"; "y" ]
          ~rows:[ [ "1"; "2" ] ])
  in
  let page = Html.page ~title:"t & t" ~subtitle:"sub" body in
  Alcotest.(check bool) "escapes title" true (contains page "t &amp; t");
  Alcotest.(check bool) "escapes section heading" true
    (contains page "A &lt;section&gt;");
  Alcotest.(check bool) "self-contained stylesheet" true
    (contains page "<style>");
  (* xmlns is a namespace identifier, not a fetch; anything that loads
     (script, link, src/href, @import) must be absent. *)
  Alcotest.(check bool) "no external assets" false
    (contains page "<script" || contains page "<link" || contains page "src="
    || contains page "href=" || contains page "@import");
  Alcotest.(check bool) "dark palette selected via media query" true
    (contains page "prefers-color-scheme: dark");
  Alcotest.(check bool) "series colors are custom properties" true
    (contains page "--s0:" && contains page "var(--s0)");
  Alcotest.(check bool) "data table fallback present" true
    (contains page "<details>")

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "basic" `Quick test_table_basic;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "write roundtrip" `Quick
            test_csv_write_roundtrip;
        ] );
      ( "plots",
        [
          Alcotest.test_case "line" `Quick test_line_plot;
          Alcotest.test_case "line empty" `Quick test_line_plot_empty;
          Alcotest.test_case "line logx" `Quick test_line_plot_logx_filters;
          Alcotest.test_case "bars" `Quick test_bars;
          Alcotest.test_case "heat" `Quick test_heat;
        ] );
      ( "formatting",
        [ Alcotest.test_case "f3 and sci" `Quick test_formatting ] );
      ( "svg",
        [
          Alcotest.test_case "line chart" `Quick test_svg_line_chart;
          Alcotest.test_case "series cap" `Quick test_svg_series_cap;
          Alcotest.test_case "bar chart" `Quick test_svg_bar_chart;
          Alcotest.test_case "no non-finite tokens" `Quick
            test_svg_no_nonfinite_tokens;
        ] );
      ("html", [ Alcotest.test_case "page" `Quick test_html_page ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_table_never_raises ]);
    ]
